//! Property-based tests for the routing heuristics: the guarantees the
//! paper states ("work for any given limit of paths", "gracefully
//! increase", "reach optimal when all paths are allowed") must hold on
//! arbitrary XGFTs.

use lmpr_core::{DModK, Disjoint, DisjointStride, RandomK, Router, ShiftOne, Umulti};
use proptest::prelude::*;
use xgft::{PnId, Topology, XgftSpec, MAX_HEIGHT};

fn arb_topo() -> impl Strategy<Value = Topology> {
    (1usize..=4)
        .prop_flat_map(|h| {
            (
                prop::collection::vec(1u32..=4, h),
                prop::collection::vec(1u32..=4, h),
            )
        })
        .prop_map(|(m, w)| Topology::new(XgftSpec::new(&m, &w).expect("valid spec")))
}

fn topo_pair_k() -> impl Strategy<Value = (Topology, PnId, PnId, u64)> {
    arb_topo().prop_flat_map(|t| {
        let n = t.num_pns();
        (Just(t), 0..n, 0..n, 1u64..=12).prop_map(|(t, s, d, k)| (t, PnId(s), PnId(d), k))
    })
}

fn all_limited_routers(k: u64) -> Vec<Box<dyn Router>> {
    vec![
        Box::new(ShiftOne::new(k)),
        Box::new(Disjoint::new(k)),
        Box::new(DisjointStride::new(k)),
        Box::new(RandomK::new(k, 0xFEED)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cardinality_distinctness_and_range((t, s, d, k) in topo_pair_k()) {
        let x = t.num_paths(s, d);
        for r in all_limited_routers(k) {
            let set = r.path_set(&t, s, d);
            prop_assert_eq!(set.len() as u64, k.min(x), "router {}", r.name());
            let mut ids: Vec<u64> = set.paths().iter().map(|p| p.0).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), set.len(), "duplicate ids in {}", r.name());
            prop_assert!(ids.iter().all(|&p| p < x), "out-of-range id in {}", r.name());
        }
    }

    #[test]
    fn dmodk_anchoring((t, s, d, k) in topo_pair_k()) {
        // shift-1, disjoint and stride all contain the d-mod-k path as
        // their first selection; random must *contain* it only when the
        // whole path space is selected.
        let anchor = t.dmodk_path(s, d);
        for r in [
            Box::new(ShiftOne::new(k)) as Box<dyn Router>,
            Box::new(Disjoint::new(k)),
            Box::new(DisjointStride::new(k)),
        ] {
            prop_assert_eq!(r.path_set(&t, s, d).paths()[0], anchor, "router {}", r.name());
        }
    }

    #[test]
    fn full_budget_recovers_umulti((t, s, d, _k) in topo_pair_k()) {
        let x = t.num_paths(s, d);
        let reference: Vec<u64> = (0..x).collect();
        for r in all_limited_routers(x.max(1)) {
            let mut ids: Vec<u64> =
                r.path_set(&t, s, d).paths().iter().map(|p| p.0).collect();
            ids.sort_unstable();
            prop_assert_eq!(&ids, &reference, "router {} at K = X", r.name());
        }
        let mut ids: Vec<u64> =
            Umulti.path_set(&t, s, d).paths().iter().map(|p| p.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, reference);
    }

    #[test]
    fn deterministic_selections_nest((t, s, d, k) in topo_pair_k()) {
        // Growing the budget must extend, never reshuffle, the selection
        // for shift-1, disjoint and stride-with-doubling (the stride
        // variant nests only along the doubling chain K → 2K).
        for (small, big) in [
            (
                Box::new(ShiftOne::new(k)) as Box<dyn Router>,
                Box::new(ShiftOne::new(k + 1)) as Box<dyn Router>,
            ),
            (Box::new(Disjoint::new(k)), Box::new(Disjoint::new(k + 1))),
        ] {
            let a = small.path_set(&t, s, d);
            let b = big.path_set(&t, s, d);
            prop_assert_eq!(
                a.paths(),
                &b.paths()[..a.len()],
                "{} is not a prefix of {}",
                small.name(),
                big.name()
            );
        }
    }

    #[test]
    fn disjoint_first_w1_paths_are_link_disjoint((t, s, d, _k) in topo_pair_k()) {
        prop_assume!(s != d);
        let w1 = t.spec().w_at(1) as u64;
        let set = Disjoint::new(w1).path_set(&t, s, d);
        let mut link_sets: Vec<Vec<u32>> = Vec::new();
        for &p in set.paths() {
            let mut links = Vec::new();
            t.walk_path(s, d, p, |l| links.push(l.0));
            link_sets.push(links);
        }
        for (i, a) in link_sets.iter().enumerate() {
            for b in link_sets.iter().skip(i + 1) {
                prop_assert!(
                    a.iter().all(|l| !b.contains(l)),
                    "first w_1 disjoint paths share a link"
                );
            }
        }
    }

    #[test]
    fn disjoint_spreads_low_levels_at_least_as_well_as_shift((t, s, d, k) in topo_pair_k()) {
        // The design goal of §4.2.3: for the same K, the disjoint
        // selection uses at least as many distinct level-1 up ports as
        // shift-1 does.
        prop_assume!(s != d);
        let distinct_u1 = |r: &dyn Router| {
            let mut u = [0u32; MAX_HEIGHT];
            let mut set = std::collections::HashSet::new();
            for &p in r.path_set(&t, s, d).paths() {
                t.path_up_ports(s, d, p, &mut u);
                set.insert(u[0]);
            }
            set.len()
        };
        prop_assert!(distinct_u1(&Disjoint::new(k)) >= distinct_u1(&ShiftOne::new(k)));
    }

    #[test]
    fn self_pairs_get_the_empty_path((t, s, _d, k) in topo_pair_k()) {
        for r in all_limited_routers(k) {
            let set = r.path_set(&t, s, s);
            prop_assert_eq!(set.len(), 1);
            prop_assert_eq!(set.paths()[0].0, 0);
        }
        prop_assert_eq!(DModK.path_set(&t, s, s).paths()[0].0, 0);
    }
}

mod shift_bijectivity_props {
    use lmpr_core::forwarding::{shift_vectors, ShiftVector, SlotOrder};
    use proptest::prelude::*;
    use xgft::{PnId, Topology, XgftSpec, MAX_HEIGHT};

    /// Trees small enough to enumerate the whole slot × pair space:
    /// `m ≤ 3` keeps the PN count at ≤ 27 and `w ≤ 4` keeps the full
    /// budget `X = Π w_i ≤ 64` under the LMC cap. The `m` and `w`
    /// vectors are drawn independently per level, so asymmetric XGFTs
    /// are the common case, not the exception.
    fn arb_topo() -> impl Strategy<Value = Topology> {
        (1usize..=3)
            .prop_flat_map(|h| {
                (
                    prop::collection::vec(2u32..=3, h),
                    prop::collection::vec(1u32..=4, h),
                )
            })
            .prop_map(|(m, w)| Topology::new(XgftSpec::new(&m, &w).expect("valid")))
    }

    /// The path id a shift vector specifies for `(s, d)`: apply
    /// `(u_t(d) + c_t) mod w_t` to the pair's d-mod-k digits and
    /// recombine in the pair's mixed radix.
    fn specified_path(topo: &Topology, s: PnId, d: PnId, shift: &ShiftVector) -> u64 {
        let kappa = topo.nca_level(s, d);
        let mut u = [0u32; MAX_HEIGHT];
        topo.path_up_ports(s, d, topo.dmodk_path(s, d), &mut u);
        let x = topo.w_prod(kappa);
        let mut p = 0u64;
        for t in 1..=kappa {
            let w = topo.spec().w_at(t) as u64;
            let digit = (u[t - 1] as u64 + shift.at(t) as u64) % w;
            p += digit * (x / topo.w_prod(t));
        }
        p
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// At full budget `K = X` the shift-vector family is bijective
        /// over every pair's path space, for both slot orders: each of
        /// the pair's `X_pair` paths is specified by exactly
        /// `X / X_pair` slots (low-NCA pairs see each of their fewer
        /// paths proportionally more often — an LFT cannot do better).
        #[test]
        fn full_budget_shift_vectors_are_bijective(topo in arb_topo()) {
            let x_topo = topo.w_prod(topo.height());
            for order in [SlotOrder::TopFirst, SlotOrder::BottomFirst] {
                let vecs = shift_vectors(&topo, x_topo, order);
                prop_assert_eq!(vecs.len() as u64, x_topo);
                let n = topo.num_pns();
                for s in 0..n {
                    for d in 0..n {
                        let (s, d) = (PnId(s), PnId(d));
                        if s == d {
                            continue;
                        }
                        let x_pair = topo.num_paths(s, d);
                        let mut counts = vec![0u64; x_pair as usize];
                        for v in &vecs {
                            counts[specified_path(&topo, s, d, v) as usize] += 1;
                        }
                        let want = x_topo / x_pair;
                        prop_assert!(
                            counts.iter().all(|&c| c == want),
                            "{order:?} ({s:?}, {d:?}): multiplicities {counts:?}, want {want}"
                        );
                    }
                }
            }
        }

        /// Slot 0 is plain d-mod-k for both orders at every budget —
        /// the all-zero shift vector — so single-path deployments are
        /// bit-identical to the d-mod-k baseline.
        #[test]
        fn slot_zero_is_plain_dmodk(topo in arb_topo(), k in 1u64..=8) {
            for order in [SlotOrder::TopFirst, SlotOrder::BottomFirst] {
                let vecs = shift_vectors(&topo, k, order);
                prop_assert!((1..=topo.height()).all(|t| vecs[0].at(t) == 0));
                let n = topo.num_pns();
                for s in 0..n {
                    for d in 0..n {
                        let (s, d) = (PnId(s), PnId(d));
                        if s == d {
                            continue;
                        }
                        prop_assert_eq!(
                            specified_path(&topo, s, d, &vecs[0]),
                            topo.dmodk_path(s, d).0
                        );
                    }
                }
            }
        }

        /// At any budget each order enumerates `min(k, X)` *distinct*
        /// shift vectors, and at full budget the two orders enumerate
        /// the same set in different sequences (they trade fork
        /// locality, never coverage). Below full budget the prefixes
        /// legitimately differ — top-first spends its slots on top-level
        /// shifts, bottom-first on level-1 forks.
        #[test]
        fn orders_cover_without_duplicates(topo in arb_topo(), k in 1u64..=16) {
            let flat = |order, k| -> Vec<Vec<u32>> {
                let mut v: Vec<Vec<u32>> = shift_vectors(&topo, k, order)
                    .iter()
                    .map(|sv| (1..=topo.height()).map(|t| sv.at(t)).collect())
                    .collect();
                v.sort();
                v
            };
            let x = topo.w_prod(topo.height());
            for order in [SlotOrder::TopFirst, SlotOrder::BottomFirst] {
                let v = flat(order, k);
                prop_assert_eq!(v.len() as u64, k.min(x));
                prop_assert!(v.windows(2).all(|w| w[0] != w[1]), "{order:?} repeats a vector");
            }
            prop_assert_eq!(flat(SlotOrder::TopFirst, x), flat(SlotOrder::BottomFirst, x));
        }
    }
}

mod forwarding_props {
    use lmpr_core::forwarding::{ForwardingTables, SlotOrder};
    use proptest::prelude::*;
    use xgft::{PnId, Topology, XgftSpec};

    fn arb_topo() -> impl Strategy<Value = Topology> {
        (1usize..=3)
            .prop_flat_map(|h| {
                (
                    prop::collection::vec(2u32..=3, h),
                    prop::collection::vec(1u32..=3, h),
                )
            })
            .prop_map(|(m, w)| Topology::new(XgftSpec::new(&m, &w).expect("valid")))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every table walk terminates at the right PN on a shortest
        /// path, for both slot orders and arbitrary topologies.
        #[test]
        fn all_walks_verify(topo in arb_topo(), k in 1u64..=6) {
            for order in [SlotOrder::BottomFirst, SlotOrder::TopFirst] {
                let ft = ForwardingTables::build(&topo, k, order);
                for s in 0..topo.num_pns() {
                    for d in 0..topo.num_pns() {
                        let (s, d) = (PnId(s), PnId(d));
                        for slot in 0..k {
                            let nodes = ft.route(&topo, s, d, slot)
                                .map_err(TestCaseError::fail)?;
                            let expect = if s == d {
                                1
                            } else {
                                2 * topo.nca_level(s, d) + 1
                            };
                            prop_assert_eq!(nodes.len(), expect);
                        }
                    }
                }
            }
        }

        /// Distinct slots within the pair's path-space size reach
        /// distinct apexes (the digit shift is injective).
        #[test]
        fn slots_reach_distinct_apexes(topo in arb_topo()) {
            let h = topo.height();
            let x = topo.w_prod(h).min(8);
            let ft = ForwardingTables::build(&topo, x, SlotOrder::BottomFirst);
            let n = topo.num_pns();
            let (s, d) = (PnId(0), PnId(n - 1));
            prop_assume!(topo.nca_level(s, d) == h);
            let mut apexes = std::collections::HashSet::new();
            for slot in 0..x.min(topo.num_paths(s, d)) {
                let nodes = ft.route(&topo, s, d, slot).unwrap();
                apexes.insert(nodes[h]);
            }
            prop_assert_eq!(apexes.len() as u64, x.min(topo.num_paths(s, d)));
        }
    }
}
