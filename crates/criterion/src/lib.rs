//! Vendored, dependency-free stand-in for the subset of the `criterion`
//! API used by this workspace's benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal harness under the same crate name. It runs each
//! benchmark closure a small number of times, reports median wall-clock
//! time per iteration to stdout, and performs no statistical analysis,
//! plotting or baseline management.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered from a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// `function_name/parameter` identifier.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warmup iteration.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.sort_unstable();
        self.times[self.times.len() / 2]
    }
}

/// The benchmark manager (stub: holds default settings only).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Close the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    println!(
        "bench {label:<48} median {:>12.3?} ({} samples)",
        b.median(),
        samples
    );
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        let mut runs = 0u32;
        group
            .sample_size(3)
            .bench_function(BenchmarkId::from_parameter("noop"), |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
        group.finish();
        // 3 timed + 1 warmup iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }
}
