//! Per-level load breakdowns.
//!
//! §5 of the paper explains the heuristics' ranking through *where* the
//! contention sits: shift-1 balances top-level links but leaves the
//! lower levels as unbalanced as single-path routing, which is exactly
//! what the disjoint heuristic fixes. This module quantifies that by
//! splitting the link-load map per tree level and direction.

use crate::LinkLoads;
use xgft::{DirectedLinkId, LinkDir, Topology};

/// Load statistics of one (level, direction) link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelLoads {
    /// Tree level of the links' upper endpoint (`1..=h`).
    pub level: u8,
    /// Link direction.
    pub dir: LinkDir,
    /// Largest load in the class.
    pub max: f64,
    /// Mean load over the class.
    pub mean: f64,
    /// Number of links in the class.
    pub links: u32,
}

impl LevelLoads {
    /// Max-to-mean ratio — 1.0 means the class is perfectly balanced.
    /// Returns 1.0 for an idle class.
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max / self.mean
        }
    }
}

/// Split a load map into per-(level, direction) statistics, ordered
/// up-1, down-1, up-2, down-2, ….
pub fn level_breakdown(topo: &Topology, loads: &LinkLoads) -> Vec<LevelLoads> {
    let h = topo.height();
    let mut sums = vec![0.0f64; 2 * h];
    let mut maxes = vec![0.0f64; 2 * h];
    let mut counts = vec![0u32; 2 * h];
    for (i, &v) in loads.loads().iter().enumerate() {
        let (level, dir) = topo.link_level_dir(DirectedLinkId(i as u32));
        let idx = 2 * (level as usize - 1) + usize::from(dir == LinkDir::Down);
        sums[idx] += v;
        maxes[idx] = maxes[idx].max(v);
        counts[idx] += 1;
    }
    (0..2 * h)
        .map(|idx| LevelLoads {
            level: (idx / 2 + 1) as u8,
            dir: if idx % 2 == 0 {
                LinkDir::Up
            } else {
                LinkDir::Down
            },
            max: maxes[idx],
            mean: sums[idx] / counts[idx] as f64,
            links: counts[idx],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{Disjoint, ShiftOne};
    use lmpr_traffic::{random_permutation, TrafficMatrix};
    use xgft::XgftSpec;

    #[test]
    fn classes_partition_the_link_set() {
        let topo = Topology::new(XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap());
        let loads = LinkLoads::zero(&topo);
        let classes = level_breakdown(&topo, &loads);
        assert_eq!(classes.len(), 6);
        let total: u32 = classes.iter().map(|c| c.links).sum();
        assert_eq!(total, topo.num_links());
        for c in &classes {
            assert_eq!(c.max, 0.0);
            assert_eq!(c.imbalance(), 1.0);
        }
    }

    #[test]
    fn shift_leaves_lower_levels_unbalanced() {
        // The §5 claim, averaged over permutations: with the same K,
        // shift-1's level-2 up-links are more imbalanced than
        // disjoint's on a 3-level tree (shift spreads only at level 3).
        let topo = Topology::new(XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap());
        let mut shift_imb = 0.0;
        let mut disjoint_imb = 0.0;
        let samples = 12;
        for seed in 0..samples {
            let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
            let s = level_breakdown(&topo, &LinkLoads::accumulate(&topo, &ShiftOne::new(4), &tm));
            let d = level_breakdown(&topo, &LinkLoads::accumulate(&topo, &Disjoint::new(4), &tm));
            // Index 2 = up-links into level 2.
            shift_imb += s[2].imbalance();
            disjoint_imb += d[2].imbalance();
        }
        assert!(
            disjoint_imb < shift_imb,
            "disjoint must balance level-2 up-links better: {disjoint_imb:.2} vs {shift_imb:.2}"
        );
    }

    #[test]
    fn means_reflect_volume_conservation() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), 1));
        let loads = LinkLoads::accumulate(&topo, &Disjoint::new(2), &tm);
        let classes = level_breakdown(&topo, &loads);
        let recomposed: f64 = classes.iter().map(|c| c.mean * c.links as f64).sum();
        assert!((recomposed - loads.total()).abs() < 1e-9);
    }
}
