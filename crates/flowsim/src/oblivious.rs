//! Sampled lower bounds on the oblivious performance ratio.
//!
//! The oblivious ratio `PERF(r) = max over all TMs of PERF(r, TM)` is
//! what Theorems 1 and 2 bound analytically. Exact computation needs a
//! linear program over the traffic polytope; this module instead
//! *certifies lower bounds* by searching a family of hard witnesses:
//! random permutations, the classic structured permutations, and the
//! Theorem-2 concentration pattern. For UMULTI the estimate is exactly
//! 1 (Theorem 1 makes every witness tight); for single-path schemes it
//! typically finds witnesses within a small factor of the true ratio.

use crate::performance_ratio;
use lmpr_core::Router;
use lmpr_traffic::{
    adversarial_concentration, bit_complement_permutation, bit_reversal_permutation,
    random_permutation, shift_permutation, transpose_permutation, TrafficMatrix,
};
use xgft::Topology;

/// A certified lower bound on the oblivious ratio, with the traffic
/// matrix that realized it.
#[derive(Debug, Clone, PartialEq)]
pub struct ObliviousEstimate {
    /// The best (largest) performance ratio found.
    pub ratio: f64,
    /// Human-readable name of the witness traffic matrix.
    pub witness: String,
}

/// Search `samples` random permutations plus all applicable structured
/// witnesses and return the worst ratio found for `router`.
pub fn estimate_oblivious_ratio<R: Router + ?Sized>(
    topo: &Topology,
    router: &R,
    samples: u64,
    seed: u64,
) -> ObliviousEstimate {
    let n = topo.num_pns();
    let mut best = ObliviousEstimate {
        ratio: 1.0,
        witness: "uniform (trivial)".into(),
    };
    let consider = |ratio: f64, witness: String, best: &mut ObliviousEstimate| {
        if ratio > best.ratio {
            *best = ObliviousEstimate { ratio, witness };
        }
    };

    for i in 0..samples {
        let tm = TrafficMatrix::permutation(&random_permutation(n, seed ^ (i * 0x9E37)));
        let r = performance_ratio(topo, router, &tm);
        consider(r, format!("random permutation #{i}"), &mut best);
    }
    for k in [1u32, n / 4, n / 2, n.saturating_sub(1)] {
        if k == 0 || k >= n {
            continue;
        }
        let tm = TrafficMatrix::permutation(&shift_permutation(n, k));
        consider(
            performance_ratio(topo, router, &tm),
            format!("shift({k}) permutation"),
            &mut best,
        );
    }
    if n.is_power_of_two() {
        let tm = TrafficMatrix::permutation(&bit_complement_permutation(n));
        consider(
            performance_ratio(topo, router, &tm),
            "bit-complement".into(),
            &mut best,
        );
        let tm = TrafficMatrix::permutation(&bit_reversal_permutation(n));
        consider(
            performance_ratio(topo, router, &tm),
            "bit-reversal".into(),
            &mut best,
        );
    }
    let r = (n as f64).sqrt().round() as u32;
    if r * r == n {
        let tm = TrafficMatrix::permutation(&transpose_permutation(n));
        consider(
            performance_ratio(topo, router, &tm),
            "transpose".into(),
            &mut best,
        );
    }
    if let Some(p) = adversarial_concentration(topo) {
        consider(
            performance_ratio(topo, router, &p.tm),
            "Theorem-2 concentration".into(),
            &mut best,
        );
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Disjoint, Umulti};
    use xgft::XgftSpec;

    #[test]
    fn umulti_estimate_is_exactly_one() {
        let topo = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).unwrap());
        let e = estimate_oblivious_ratio(&topo, &Umulti, 10, 3);
        assert!((e.ratio - 1.0).abs() < 1e-9, "got {e:?}");
    }

    #[test]
    fn dmodk_witnessed_by_the_theorem2_pattern() {
        let topo = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).unwrap());
        let e = estimate_oblivious_ratio(&topo, &DModK, 6, 3);
        // The concentration pattern certifies the full Π w_i = 4 ratio
        // (a random permutation may tie it — both witness the bound).
        assert!(e.ratio >= 4.0 - 1e-9, "got {e:?}");
    }

    #[test]
    fn ratios_decrease_with_k() {
        let topo = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).unwrap());
        let r1 = estimate_oblivious_ratio(&topo, &Disjoint::new(1), 8, 1).ratio;
        let r2 = estimate_oblivious_ratio(&topo, &Disjoint::new(2), 8, 1).ratio;
        let r4 = estimate_oblivious_ratio(&topo, &Disjoint::new(4), 8, 1).ratio;
        assert!(r2 <= r1 + 1e-9);
        assert!(r4 <= r2 + 1e-9);
        assert!(
            (r4 - 1.0).abs() < 1e-9,
            "full budget is optimal on all witnesses"
        );
    }

    #[test]
    fn structured_witnesses_apply_when_shapes_allow() {
        // Power-of-two and square node counts pull in the extra
        // witnesses without panicking.
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap()); // n = 16
        let e = estimate_oblivious_ratio(&topo, &DModK, 2, 9);
        assert!(e.ratio >= 1.0);
    }
}
