//! The §5 permutation-sampling methodology.
//!
//! "For each topology and each routing algorithm, we first sample random
//! permutations and compute the average maximum permutation load … We
//! then compute the confidence interval with 99 % confidence level. If
//! the confidence interval is less than 1 % of the average, we stop …
//! If [not], we double the number of samples and repeat."
//!
//! Samples are independent, so they fan out across worker threads; each
//! sample's permutation seed is a pure function of `(study seed, sample
//! index)`, which keeps results bit-identical for any thread count.

use crate::LinkLoads;
use lmpr_core::{Router, RouterKind};
use lmpr_traffic::{random_permutation, TrafficMatrix};
use xgft::Topology;

/// z-value of the two-sided 99 % normal confidence interval.
pub const Z_99: f64 = 2.576;

/// Parameters of a permutation study.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// z-score of the confidence level (default: `Z_99` = 2.576).
    pub z: f64,
    /// Stop once `z·σ/√n ≤ rel_half_width · mean` (default 0.01).
    pub rel_half_width: f64,
    /// First batch size (default 100, then doubling).
    pub initial_samples: usize,
    /// Hard cap on the number of samples (default 102 400).
    pub max_samples: usize,
    /// Base seed for the permutation stream.
    pub seed: u64,
    /// Worker threads; 0 means `std::thread::available_parallelism`.
    pub threads: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            z: Z_99,
            rel_half_width: 0.01,
            initial_samples: 100,
            max_samples: 102_400,
            seed: 0x5EED_CAFE,
            threads: 0,
        }
    }
}

/// Outcome of a study: the average maximum permutation load and the
/// achieved statistical precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyResult {
    /// Mean of the per-permutation maximum link loads.
    pub mean: f64,
    /// Half-width of the confidence interval at the configured level.
    pub half_width: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of permutations evaluated.
    pub samples: usize,
    /// Whether the precision target was met (false only when
    /// `max_samples` was exhausted first).
    pub converged: bool,
}

/// A reusable permutation study bound to one topology.
#[derive(Debug, Clone)]
pub struct PermutationStudy {
    topo: Topology,
    cfg: StudyConfig,
}

impl PermutationStudy {
    /// Create a study over `topo` with the given configuration.
    pub fn new(topo: Topology, cfg: StudyConfig) -> Self {
        assert!(
            cfg.initial_samples >= 2,
            "need at least two samples for a CI"
        );
        assert!(cfg.rel_half_width > 0.0 && cfg.z > 0.0);
        PermutationStudy { topo, cfg }
    }

    /// The topology under study.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Run the study for one router: average maximum link load over
    /// random permutations with the CI-driven stopping rule.
    pub fn run<R: Router>(&self, router: &R) -> StudyResult {
        let mut values: Vec<f64> = Vec::with_capacity(self.cfg.initial_samples);
        let mut target = self.cfg.initial_samples;
        loop {
            self.sample_range(router, values.len(), target, &mut values);
            let (mean, sd) = mean_std(&values);
            let half_width = self.cfg.z * sd / (values.len() as f64).sqrt();
            let converged = half_width <= self.cfg.rel_half_width * mean;
            if converged || target >= self.cfg.max_samples {
                return StudyResult {
                    mean,
                    half_width,
                    std_dev: sd,
                    samples: values.len(),
                    converged,
                };
            }
            target = (target * 2).min(self.cfg.max_samples);
        }
    }

    /// Evaluate samples `from..to` in parallel and append them (in
    /// sample-index order) to `values`.
    fn sample_range<R: Router>(&self, router: &R, from: usize, to: usize, values: &mut Vec<f64>) {
        let n = to - from;
        let threads = if self.cfg.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.cfg.threads
        }
        .min(n)
        .max(1);
        let mut out = vec![0.0f64; n];
        if threads == 1 {
            let mut loads = LinkLoads::zero(&self.topo);
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.one_sample(router, from + i, &mut loads);
            }
        } else {
            // Static contiguous chunking: each worker owns a disjoint
            // `&mut` slice, results land at their sample index, and the
            // outcome is independent of scheduling. Samples are
            // homogeneous, so static partitioning balances well.
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (c, slice) in out.chunks_mut(chunk).enumerate() {
                    let base = from + c * chunk;
                    scope.spawn(move || {
                        let mut loads = LinkLoads::zero(&self.topo);
                        for (i, slot) in slice.iter_mut().enumerate() {
                            *slot = self.one_sample(router, base + i, &mut loads);
                        }
                    });
                }
            });
        }
        values.extend_from_slice(&out);
    }

    fn one_sample<R: Router>(&self, router: &R, index: usize, loads: &mut LinkLoads) -> f64 {
        let seed = sample_seed(self.cfg.seed, index as u64);
        let perm = random_permutation(self.topo.num_pns(), seed);
        let tm = TrafficMatrix::permutation(&perm);
        loads.clear();
        loads.add(&self.topo, router, &tm);
        loads.max_load()
    }
}

/// Average a study over several seeds of a seeded router (the paper
/// averages the random heuristic over five seeds). Deterministic
/// routers are unaffected by the seed, so the function simply averages
/// repeated studies with shifted permutation streams.
pub fn average_over_seeds(
    topo: &Topology,
    kind: RouterKind,
    seeds: &[u64],
    cfg: StudyConfig,
) -> StudyResult {
    assert!(!seeds.is_empty());
    let mut acc = StudyResult {
        mean: 0.0,
        half_width: 0.0,
        std_dev: 0.0,
        samples: 0,
        converged: true,
    };
    for &seed in seeds {
        let study = PermutationStudy::new(topo.clone(), cfg);
        let r = study.run(&kind.with_seed(seed));
        acc.mean += r.mean;
        acc.half_width = acc.half_width.max(r.half_width);
        acc.std_dev = acc.std_dev.max(r.std_dev);
        acc.samples += r.samples;
        acc.converged &= r.converged;
    }
    acc.mean /= seeds.len() as f64;
    acc
}

/// SplitMix64: decorrelate per-sample permutation seeds.
fn sample_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Disjoint, Umulti};
    use xgft::XgftSpec;

    fn quick_cfg() -> StudyConfig {
        StudyConfig {
            initial_samples: 32,
            max_samples: 256,
            rel_half_width: 0.05,
            threads: 2,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
        let mut cfg = quick_cfg();
        cfg.threads = 1;
        let a = PermutationStudy::new(topo.clone(), cfg).run(&DModK);
        cfg.threads = 4;
        let b = PermutationStudy::new(topo, cfg).run(&DModK);
        assert_eq!(a, b);
    }

    #[test]
    fn umulti_beats_dmodk_on_average() {
        let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
        let study = PermutationStudy::new(topo, quick_cfg());
        let single = study.run(&DModK);
        let multi = study.run(&Umulti);
        assert!(multi.mean < single.mean);
        assert!(
            multi.mean >= 1.0 - 1e-9,
            "a permutation always loads some link fully"
        );
    }

    #[test]
    fn monotone_in_k() {
        let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
        let study = PermutationStudy::new(topo, quick_cfg());
        let k1 = study.run(&Disjoint::new(1)).mean;
        let k2 = study.run(&Disjoint::new(2)).mean;
        let k4 = study.run(&Disjoint::new(4)).mean;
        assert!(k2 <= k1 + 1e-9);
        assert!(k4 <= k2 + 1e-9);
    }

    #[test]
    fn average_over_seeds_runs() {
        let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
        let r = average_over_seeds(&topo, RouterKind::RandomK(2, 0), &[1, 2, 3], quick_cfg());
        assert!(r.mean >= 1.0);
        assert!(r.samples >= 3 * 32);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
