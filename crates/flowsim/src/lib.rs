//! Flow-level fat-tree simulator.
//!
//! Flow-level simulation evaluates a routing scheme analytically: route
//! every traffic-matrix entry over its selected paths with the scheme's
//! traffic fractions, add the contributions up per *directed link*, and
//! report the **maximum link load** (`MLOAD(r, TM)` in the paper). This
//! is the metric behind Figure 4.
//!
//! The crate also implements the paper's theory hooks:
//!
//! * [`ml_lower_bound`] — Lemma 1's sub-tree cut bound `ML(TM)` on the
//!   optimal load `OLOAD(TM)`;
//! * [`performance_ratio`] — `MLOAD / ML ≥ MLOAD / OLOAD`, which is the
//!   exact performance ratio whenever some routing meets the bound
//!   (UMULTI always does — Theorem 1);
//! * [`PermutationStudy`] — the §5 evaluation methodology: sample random
//!   permutations, average the maximum load, and keep doubling the
//!   sample count until the 99 % confidence interval is within 1 % of
//!   the mean. Sampling fans out over threads with deterministic
//!   per-sample seeds, so results do not depend on the thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod degraded;
mod loads;
mod oblivious;
mod report;
mod study;
mod worstcase;

pub use bound::{ml_lower_bound, performance_ratio};
pub use degraded::DegradedLoads;
pub use loads::LinkLoads;
pub use oblivious::{estimate_oblivious_ratio, ObliviousEstimate};
pub use report::{level_breakdown, LevelLoads};
pub use study::{average_over_seeds, PermutationStudy, StudyConfig, StudyResult};
pub use worstcase::{worst_permutation, SearchConfig, WorstCase};
