//! Adversarial permutation search.
//!
//! Random sampling (the [`crate::estimate_oblivious_ratio`] witnesses)
//! finds *typical* bad cases; this module searches for *worst* cases by
//! hill climbing in permutation space: propose destination swaps,
//! keep those that increase the routing's performance ratio, restart
//! from fresh random permutations to escape plateaus. The result is a
//! stronger certified lower bound on the oblivious ratio restricted to
//! permutation traffic — the traffic class the paper's Figure 4
//! averages over.

use crate::{ml_lower_bound, LinkLoads};
use lmpr_core::Router;
use lmpr_traffic::{random_permutation, TrafficMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xgft::Topology;

/// Search budget knobs.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Independent restarts from fresh random permutations.
    pub restarts: u32,
    /// Swap proposals per restart.
    pub steps_per_restart: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            restarts: 4,
            steps_per_restart: 400,
            seed: 0xBAD_5EED,
        }
    }
}

/// Outcome of a search: the permutation found and its performance ratio.
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// The adversarial permutation (node `i` sends to `perm[i]`).
    pub permutation: Vec<u32>,
    /// `MLOAD / ML` of the permutation under the router searched.
    pub ratio: f64,
}

/// Hill-climb toward a permutation maximizing `router`'s performance
/// ratio on `topo`.
pub fn worst_permutation<R: Router + ?Sized>(
    topo: &Topology,
    router: &R,
    cfg: SearchConfig,
) -> WorstCase {
    assert!(cfg.restarts >= 1 && cfg.steps_per_restart >= 1);
    let n = topo.num_pns();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut loads = LinkLoads::zero(topo);
    let mut best = WorstCase {
        permutation: (0..n).collect(),
        ratio: 1.0,
    };

    let score = |perm: &[u32], loads: &mut LinkLoads| -> f64 {
        let tm = TrafficMatrix::permutation(perm);
        loads.clear();
        loads.add(topo, router, &tm);
        let ml = ml_lower_bound(topo, &tm);
        if ml == 0.0 {
            1.0
        } else {
            loads.max_load() / ml
        }
    };

    for restart in 0..cfg.restarts {
        let mut perm = random_permutation(n, cfg.seed ^ (restart as u64) << 17);
        let mut current = score(&perm, &mut loads);
        for _ in 0..cfg.steps_per_restart {
            // Swap the destinations of two random sources.
            let a = rng.gen_range(0..n) as usize;
            let b = rng.gen_range(0..n) as usize;
            if a == b {
                continue;
            }
            perm.swap(a, b);
            let proposed = score(&perm, &mut loads);
            if proposed >= current {
                current = proposed; // accept (ties allowed: plateau walks)
            } else {
                perm.swap(a, b); // reject
            }
        }
        if current > best.ratio {
            best = WorstCase {
                permutation: perm,
                ratio: current,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Disjoint, Umulti};
    use lmpr_flowsim_test_util::quick;
    use xgft::XgftSpec;

    // Local helper module so the config literal stays in one place.
    mod lmpr_flowsim_test_util {
        use super::SearchConfig;
        pub fn quick() -> SearchConfig {
            SearchConfig {
                restarts: 2,
                steps_per_restart: 120,
                seed: 7,
            }
        }
    }

    #[test]
    fn search_result_is_a_valid_permutation() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let w = worst_permutation(&topo, &DModK, quick());
        assert!(lmpr_traffic::is_permutation(&w.permutation));
        assert!(w.ratio >= 1.0);
    }

    #[test]
    fn search_beats_or_ties_random_sampling() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let searched = worst_permutation(&topo, &DModK, quick()).ratio;
        let sampled = (0..10u64)
            .map(|s| {
                let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), s));
                crate::performance_ratio(&topo, &DModK, &tm)
            })
            .fold(1.0f64, f64::max);
        assert!(
            searched >= sampled - 1e-9,
            "hill climbing ({searched:.3}) must not lose to sampling ({sampled:.3})"
        );
    }

    #[test]
    fn umulti_cannot_be_attacked() {
        let topo = Topology::new(XgftSpec::new(&[3, 4], &[2, 2]).unwrap());
        let w = worst_permutation(&topo, &Umulti, quick());
        assert!(
            (w.ratio - 1.0).abs() < 1e-9,
            "Theorem 1 holds under attack: {w:?}"
        );
    }

    #[test]
    fn multipath_shrinks_the_attack_surface() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let single = worst_permutation(&topo, &DModK, quick()).ratio;
        let multi = worst_permutation(&topo, &Disjoint::new(4), quick()).ratio;
        assert!(
            multi < single,
            "disjoint(4) worst case {multi:.3} must beat d-mod-k worst case {single:.3}"
        );
    }

    #[test]
    fn dmodk_attack_approaches_the_structural_bound() {
        // On a 2-level tree with w = (1, 4), d-mod-k's permutation worst
        // case is at least 2 (concentrating two sub-trees' flows).
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let w = worst_permutation(&topo, &DModK, SearchConfig::default());
        assert!(w.ratio >= 2.0 - 1e-9, "found only {:.3}", w.ratio);
    }
}
