//! Flow-level load accumulation under link/switch failures.
//!
//! Mirrors [`LinkLoads::accumulate`](crate::LinkLoads::accumulate) but
//! routes every flow through the shared [`SelectionEngine`]: dead paths
//! are swapped for surviving ones, flows whose SD pair is disconnected
//! are skipped and counted instead of dividing by an empty path set,
//! and repeated SD pairs replay the cached selection instead of
//! recomputing it.

use crate::LinkLoads;
use lmpr_core::{Router, SelectionEngine};
use lmpr_traffic::TrafficMatrix;
use xgft::{FaultSet, PathId, Topology};

/// Per-link loads of a degraded network plus a disconnection census.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedLoads {
    /// Load carried by each surviving directed link (failed links carry
    /// zero by construction — no surviving path crosses them).
    pub loads: LinkLoads,
    /// Flows that were routed over at least one surviving path.
    pub routed_flows: u64,
    /// Flows whose SD pair has no surviving path; their demand is not
    /// delivered anywhere.
    pub disconnected_flows: u64,
    /// Total demand of the disconnected flows.
    pub disconnected_demand: f64,
}

impl DegradedLoads {
    /// Route `tm` with `router` degraded by `faults` and accumulate the
    /// per-link loads of the surviving traffic.
    pub fn accumulate<R: Router + ?Sized>(
        topo: &Topology,
        router: &R,
        tm: &TrafficMatrix,
        faults: &FaultSet,
    ) -> Self {
        assert_eq!(
            tm.num_nodes(),
            topo.num_pns(),
            "traffic matrix and topology node counts must agree"
        );
        let mut engine = SelectionEngine::cached(router, faults.clone());
        let mut loads = LinkLoads::zero(topo);
        let mut routed_flows = 0u64;
        let mut disconnected_flows = 0u64;
        let mut disconnected_demand = 0.0f64;
        let mut paths: Vec<PathId> = Vec::new();
        for f in tm.flows() {
            if engine.try_select(topo, f.src, f.dst, &mut paths).is_err() {
                disconnected_flows += 1;
                disconnected_demand += f.demand;
                continue;
            }
            routed_flows += 1;
            loads.deposit(topo, f.src, f.dst, &paths, f.demand);
        }
        DegradedLoads {
            loads,
            routed_flows,
            disconnected_flows,
            disconnected_demand,
        }
    }

    /// Fraction of flows that lost connectivity, in `[0, 1]` (0 for an
    /// empty traffic matrix).
    pub fn disconnection_rate(&self) -> f64 {
        let total = self.routed_flows + self.disconnected_flows;
        if total == 0 {
            0.0
        } else {
            self.disconnected_flows as f64 / total as f64
        }
    }

    /// Maximum link load of the surviving traffic (the degraded
    /// `MLOAD`).
    pub fn max_load(&self) -> f64 {
        self.loads.max_load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Disjoint};
    use lmpr_traffic::{random_permutation, Flow};
    use xgft::{PnId, XgftSpec};

    fn topo() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap())
    }

    #[test]
    fn empty_fault_set_reproduces_plain_accumulation() {
        let t = topo();
        let tm = TrafficMatrix::permutation(&random_permutation(t.num_pns(), 5));
        let plain = LinkLoads::accumulate(&t, &Disjoint::new(2), &tm);
        let degraded = DegradedLoads::accumulate(&t, &Disjoint::new(2), &tm, &FaultSet::default());
        assert_eq!(degraded.loads, plain);
        assert_eq!(degraded.disconnected_flows, 0);
        assert_eq!(degraded.disconnection_rate(), 0.0);
    }

    #[test]
    fn disconnected_flows_are_counted_not_divided_by_zero() {
        let t = topo();
        // w_1 = 1: failing PN 0's only up-link disconnects it as a source.
        let mut faults = FaultSet::new();
        faults.fail_link(t.up_link(1, 0, 0));
        let tm = TrafficMatrix::from_flows(
            t.num_pns(),
            vec![
                Flow {
                    src: PnId(0),
                    dst: PnId(15),
                    demand: 2.0,
                },
                Flow {
                    src: PnId(1),
                    dst: PnId(15),
                    demand: 1.0,
                },
            ],
        );
        let d = DegradedLoads::accumulate(&t, &DModK, &tm, &faults);
        assert_eq!(d.routed_flows, 1);
        assert_eq!(d.disconnected_flows, 1);
        assert_eq!(d.disconnected_demand, 2.0);
        assert_eq!(d.disconnection_rate(), 0.5);
        // Only the surviving flow contributes: demand 1 over 2κ = 4 hops.
        assert!((d.loads.total() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn failed_links_carry_no_load() {
        let t = topo();
        let mut faults = FaultSet::new();
        let dead = t.up_link(2, 0, 1);
        faults.fail_link(dead);
        let tm = TrafficMatrix::uniform(t.num_pns(), 1.0);
        let d = DegradedLoads::accumulate(&t, &Disjoint::new(4), &tm, &faults);
        assert_eq!(d.loads.loads()[dead.0 as usize], 0.0);
        assert_eq!(
            d.disconnected_flows, 0,
            "one dead level-2 link cannot disconnect"
        );
        // Survivors absorb the rerouted traffic: the degraded max load is
        // at least the fault-free one.
        let plain = LinkLoads::accumulate(&t, &Disjoint::new(4), &tm);
        assert!(d.max_load() >= plain.max_load() - 1e-12);
    }
}
