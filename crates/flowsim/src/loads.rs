//! Per-link load accumulation.

use lmpr_core::Router;
use lmpr_traffic::TrafficMatrix;
use xgft::{DirectedLinkId, LinkDir, PathId, PnId, Topology};

/// The load each directed link carries under a routing and a traffic
/// matrix — a dense `f64` array indexed by [`DirectedLinkId`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoads {
    loads: Vec<f64>,
}

impl LinkLoads {
    /// An all-zero load map for a topology.
    pub fn zero(topo: &Topology) -> Self {
        LinkLoads {
            loads: vec![0.0; topo.num_links() as usize],
        }
    }

    /// Route `tm` with `router` and return the per-link loads.
    pub fn accumulate<R: Router + ?Sized>(topo: &Topology, router: &R, tm: &TrafficMatrix) -> Self {
        let mut this = Self::zero(topo);
        this.add(topo, router, tm);
        this
    }

    /// Add a traffic matrix's contribution on top of existing loads
    /// (useful for composing workloads).
    pub fn add<R: Router + ?Sized>(&mut self, topo: &Topology, router: &R, tm: &TrafficMatrix) {
        assert_eq!(
            tm.num_nodes(),
            topo.num_pns(),
            "traffic matrix and topology node counts must agree"
        );
        let mut paths: Vec<PathId> = Vec::new();
        for f in tm.flows() {
            router.fill_paths(topo, f.src, f.dst, &mut paths);
            self.deposit(topo, f.src, f.dst, &paths, f.demand);
        }
    }

    /// Add a single routed flow (unit of the per-flow API).
    pub fn add_flow<R: Router + ?Sized>(
        &mut self,
        topo: &Topology,
        router: &R,
        src: PnId,
        dst: PnId,
        demand: f64,
    ) {
        let mut paths = Vec::new();
        router.fill_paths(topo, src, dst, &mut paths);
        self.deposit(topo, src, dst, &paths, demand);
    }

    /// Spread `demand` evenly over the pair's selected `paths` (the
    /// deposit step every accumulator shares). `paths` must be
    /// non-empty — degraded-mode callers skip disconnected flows before
    /// depositing.
    pub fn deposit(
        &mut self,
        topo: &Topology,
        src: PnId,
        dst: PnId,
        paths: &[PathId],
        demand: f64,
    ) {
        assert!(
            !paths.is_empty(),
            "cannot deposit a flow over an empty path set"
        );
        let share = demand / paths.len() as f64;
        for &p in paths {
            topo.walk_path(src, dst, p, |link| {
                self.loads[link.0 as usize] += share;
            });
        }
    }

    /// Reset all loads to zero, keeping the allocation (for reuse in
    /// sampling loops).
    pub fn clear(&mut self) {
        self.loads.fill(0.0);
    }

    /// The raw per-link loads.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// The paper's `MLOAD`: the largest load on any directed link.
    pub fn max_load(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// The most loaded link and its load.
    pub fn argmax(&self) -> (DirectedLinkId, f64) {
        let (idx, &load) = self
            .loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("topologies always have links");
        (DirectedLinkId(idx as u32), load)
    }

    /// Maximum load restricted to links whose upper endpoint is at
    /// `level` and that point in `dir` — the per-level breakdown used to
    /// explain why shift-1 balances the top but not the bottom (§5).
    pub fn max_load_at(&self, topo: &Topology, level: usize, dir: LinkDir) -> f64 {
        self.loads
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let (l, d) = topo.link_level_dir(DirectedLinkId(*i as u32));
                l as usize == level && d == dir
            })
            .map(|(_, &v)| v)
            .fold(0.0, f64::max)
    }

    /// Sum of all link loads (total link-units of traffic; conservation
    /// checks use this).
    pub fn total(&self) -> f64 {
        self.loads.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Umulti};
    use lmpr_traffic::{Flow, TrafficMatrix};
    use xgft::XgftSpec;

    fn topo() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap())
    }

    #[test]
    fn single_flow_loads_its_path_only() {
        let t = topo();
        let tm = TrafficMatrix::from_flows(
            t.num_pns(),
            vec![Flow {
                src: PnId(0),
                dst: PnId(15),
                demand: 2.0,
            }],
        );
        let loads = LinkLoads::accumulate(&t, &DModK, &tm);
        // NCA level 2 → 4 links, each carrying the full 2.0.
        let non_zero: Vec<f64> = loads.loads().iter().copied().filter(|&v| v > 0.0).collect();
        assert_eq!(non_zero.len(), 4);
        assert!(non_zero.iter().all(|&v| (v - 2.0).abs() < 1e-12));
        assert_eq!(loads.max_load(), 2.0);
        assert!((loads.total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn umulti_splits_evenly() {
        let t = topo();
        let tm = TrafficMatrix::from_flows(
            t.num_pns(),
            vec![Flow {
                src: PnId(0),
                dst: PnId(15),
                demand: 4.0,
            }],
        );
        let loads = LinkLoads::accumulate(&t, &Umulti, &tm);
        // 4 paths, demand 4 → each path carries 1; the first up-link is
        // shared by nothing (w_1 = 1, so all 4 paths share the PN link!).
        assert_eq!(loads.max_load(), 4.0);
        // Level-2 links each carry exactly 1.
        assert!((loads.max_load_at(&t, 2, LinkDir::Up) - 1.0).abs() < 1e-12);
        assert!((loads.max_load_at(&t, 2, LinkDir::Down) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_total_equals_demand_times_hops() {
        // Every unit of routed demand contributes exactly 2κ link-units.
        let t = topo();
        let perm = lmpr_traffic::random_permutation(t.num_pns(), 3);
        let tm = TrafficMatrix::permutation(&perm);
        let loads = LinkLoads::accumulate(&t, &DModK, &tm);
        let expected: f64 = tm
            .flows()
            .iter()
            .map(|f| 2.0 * t.nca_level(f.src, f.dst) as f64 * f.demand)
            .sum();
        assert!((loads.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn clear_and_compose() {
        let t = topo();
        let tm = TrafficMatrix::uniform(t.num_pns(), 1.0);
        let mut loads = LinkLoads::accumulate(&t, &DModK, &tm);
        let once = loads.max_load();
        loads.add(&t, &DModK, &tm);
        assert!((loads.max_load() - 2.0 * once).abs() < 1e-9);
        loads.clear();
        assert_eq!(loads.max_load(), 0.0);
    }

    #[test]
    fn add_flow_matches_matrix_accumulation() {
        let t = topo();
        let tm = TrafficMatrix::from_flows(
            t.num_pns(),
            vec![Flow {
                src: PnId(3),
                dst: PnId(9),
                demand: 1.5,
            }],
        );
        let a = LinkLoads::accumulate(&t, &Umulti, &tm);
        let mut b = LinkLoads::zero(&t);
        b.add_flow(&t, &Umulti, PnId(3), PnId(9), 1.5);
        assert_eq!(a, b);
    }

    #[test]
    fn argmax_identifies_hot_link() {
        let t = topo();
        let tm = TrafficMatrix::from_flows(
            t.num_pns(),
            vec![Flow {
                src: PnId(0),
                dst: PnId(1),
                demand: 7.0,
            }],
        );
        let loads = LinkLoads::accumulate(&t, &DModK, &tm);
        let (link, load) = loads.argmax();
        assert_eq!(load, 7.0);
        assert!(loads.loads()[link.0 as usize] == 7.0);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn mismatched_sizes_rejected() {
        let t = topo();
        let tm = TrafficMatrix::uniform(4, 1.0);
        let _ = LinkLoads::accumulate(&t, &DModK, &tm);
    }
}
