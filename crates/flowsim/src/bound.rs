//! Lemma 1: the sub-tree cut lower bound on the optimal load.

use crate::LinkLoads;
use lmpr_core::Router;
use lmpr_traffic::TrafficMatrix;
use xgft::Topology;

/// `ML(TM)` — Lemma 1 of the paper.
///
/// For every sub-tree `st` of height `k < h`, all traffic entering or
/// leaving `st` must cross its `TL(k) = Π_{i≤k+1} w_i` boundary links in
/// the relevant direction, so some link carries at least
/// `MT(TM, st) / TL(k)` where `MT` is the larger of the inbound and
/// outbound volumes. The bound is the maximum over all sub-trees of all
/// heights (height 0 = a single processing node).
///
/// Theorem 1 shows UMULTI *achieves* this bound for every traffic
/// matrix, so `ML(TM) = OLOAD(TM)` exactly — which is what lets the
/// flow-level experiments report true performance ratios.
pub fn ml_lower_bound(topo: &Topology, tm: &TrafficMatrix) -> f64 {
    assert_eq!(
        tm.num_nodes(),
        topo.num_pns(),
        "traffic matrix and topology node counts must agree"
    );
    let h = topo.height();
    let mut best = 0.0f64;
    // Reused per-height accumulators, indexed by sub-tree.
    let mut out = Vec::new();
    let mut inc = Vec::new();
    for k in 0..h {
        let subtrees = topo.num_subtrees(k) as usize;
        out.clear();
        out.resize(subtrees, 0.0f64);
        inc.clear();
        inc.resize(subtrees, 0.0f64);
        for f in tm.flows() {
            let s_st = topo.subtree_of(f.src, k) as usize;
            let d_st = topo.subtree_of(f.dst, k) as usize;
            if s_st != d_st {
                out[s_st] += f.demand;
                inc[d_st] += f.demand;
            }
        }
        let tl = topo.tl(k) as f64;
        for st in 0..subtrees {
            let mt = out[st].max(inc[st]);
            best = best.max(mt / tl);
        }
    }
    best
}

/// The performance ratio `PERF(r, TM) = MLOAD(r, TM) / OLOAD(TM)`,
/// computed with `OLOAD = ML` (exact on XGFTs by Theorem 1).
///
/// Returns 1.0 for traffic matrices that load no links at all.
pub fn performance_ratio<R: Router + ?Sized>(
    topo: &Topology,
    router: &R,
    tm: &TrafficMatrix,
) -> f64 {
    let mload = LinkLoads::accumulate(topo, router, tm).max_load();
    let oload = ml_lower_bound(topo, tm);
    if oload == 0.0 {
        debug_assert_eq!(mload, 0.0, "zero cut traffic must mean zero link load");
        1.0
    } else {
        mload / oload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Umulti};
    use lmpr_traffic::{adversarial_concentration, random_permutation, Flow, TrafficMatrix};
    use xgft::{PnId, XgftSpec};

    #[test]
    fn single_flow_bound_is_inverse_tl() {
        let t = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let tm = TrafficMatrix::from_flows(
            t.num_pns(),
            vec![Flow {
                src: PnId(0),
                dst: PnId(15),
                demand: 1.0,
            }],
        );
        // Tightest cut is the PN itself: 1 unit over TL(0) = w_1 = 1.
        assert!((ml_lower_bound(&t, &tm) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn umulti_achieves_the_bound_on_permutations() {
        // Theorem 1: MLOAD(UMULTI, TM) == ML(TM).
        for spec in [
            XgftSpec::new(&[4, 4], &[1, 4]).unwrap(),
            XgftSpec::new(&[2, 3, 4], &[2, 2, 2]).unwrap(),
            XgftSpec::m_port_n_tree(8, 2).unwrap(),
        ] {
            let t = Topology::new(spec);
            for seed in 0..5u64 {
                let tm = TrafficMatrix::permutation(&random_permutation(t.num_pns(), seed));
                let mload = LinkLoads::accumulate(&t, &Umulti, &tm).max_load();
                let ml = ml_lower_bound(&t, &tm);
                assert!(
                    (mload - ml).abs() < 1e-9,
                    "UMULTI must meet the bound: mload={mload} ml={ml}"
                );
                assert!((performance_ratio(&t, &Umulti, &tm) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn theorem2_ratio_on_adversarial_pattern() {
        // PERF(d-mod-k) on the concentration pattern is exactly Π w_i.
        let t = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).unwrap());
        let p = adversarial_concentration(&t).unwrap();
        let mload = LinkLoads::accumulate(&t, &DModK, &p.tm).max_load();
        assert!((mload - p.concentrated_load).abs() < 1e-12);
        let ml = ml_lower_bound(&t, &p.tm);
        assert!((ml - p.optimal_load).abs() < 1e-12);
        assert!((performance_ratio(&t, &DModK, &p.tm) - p.ratio).abs() < 1e-12);
        // And UMULTI stays optimal on the same pattern.
        assert!((performance_ratio(&t, &Umulti, &p.tm) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_has_ratio_one() {
        let t = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).unwrap());
        let tm = TrafficMatrix::from_flows(t.num_pns(), vec![]);
        assert_eq!(ml_lower_bound(&t, &tm), 0.0);
        assert_eq!(performance_ratio(&t, &DModK, &tm), 1.0);
    }

    #[test]
    fn bound_sees_the_binding_height() {
        // Traffic that is balanced at the PN cut but concentrated at the
        // sub-tree cut: 4 nodes of sub-tree 0 each send 1 unit out.
        let t = Topology::new(XgftSpec::new(&[4, 4], &[1, 2]).unwrap());
        let flows = (0..4)
            .map(|j| Flow {
                src: PnId(j),
                dst: PnId(4 + j),
                demand: 1.0,
            })
            .collect();
        let tm = TrafficMatrix::from_flows(t.num_pns(), flows);
        // TL(1) = w_1 w_2 = 2 → bound 4/2 = 2 (the PN cut gives only 1).
        assert!((ml_lower_bound(&t, &tm) - 2.0).abs() < 1e-12);
    }
}
