//! Vendored, dependency-free stand-in for the subset of the `proptest`
//! API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal implementation under the same crate name. It
//! keeps the same *testing semantics* — strategies compose with
//! `prop_map`/`prop_flat_map`, the [`proptest!`] macro runs each
//! property over many generated cases, `prop_assume!` rejects cases,
//! and failures report the formatted assertion message — but it does
//! **not** shrink failing inputs. Case generation is deterministic per
//! test name, so failures reproduce across runs.

#![forbid(unsafe_code)]

/// Strategy combinators: how test inputs are generated.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply produces a fresh value per case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f`
        /// returns for it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    match ((end - start) as u64).checked_add(1) {
                        Some(span) => start + rng.below(span) as $t,
                        None => rng.next() as $t,
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-length vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The test harness: configuration, RNG and error plumbing.
pub mod test_runner {
    use std::fmt;

    /// Per-property configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — skipped, not failed.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed case with the given message (usable as
        /// `.map_err(TestCaseError::fail)?`).
        pub fn fail<T: fmt::Display>(reason: T) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        /// A rejected (skipped) case.
        pub fn reject<T: fmt::Display>(reason: T) -> Self {
            TestCaseError::Reject(reason.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            }
        }
    }

    /// Deterministic case RNG (SplitMix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable, distinct seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next() as u128 * span as u128) >> 64) as u64
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the `prop` module alias exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(pattern in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut __passed: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(64);
                let mut __attempts: u32 = 0;
                while __passed < __config.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} passed of {} wanted)",
                            stringify!($name), __passed, __config.cases
                        );
                    }
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), __passed, message
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (__l, __r) => $crate::prop_assert!(
                *__l == *__r,
                "assertion failed: `{:?}` == `{:?}`", __l, __r
            ),
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (__l, __r) => $crate::prop_assert!(
                *__l == *__r,
                "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
            ),
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (__l, __r) => $crate::prop_assert!(
                *__l != *__r,
                "assertion failed: `{:?}` != `{:?}`", __l, __r
            ),
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (__l, __r) => $crate::prop_assert!(
                *__l != *__r,
                "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
            ),
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps_compose(
            (len, v) in (1usize..=5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u32..100, n))
            })
        ) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
