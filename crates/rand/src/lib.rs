//! Vendored, dependency-free stand-in for the subset of the `rand 0.8`
//! API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal implementation under the same crate name. It is
//! **not** a general-purpose RNG library: it implements exactly the
//! surface the simulators need — [`rngs::SmallRng`] (xoshiro256++),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen`] for `f64`/`bool`/`u32`/`u64`, and
//! [`seq::SliceRandom::shuffle`]. All generators are deterministic
//! functions of their seed, which is the property every consumer in
//! this repository relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is used in
/// this workspace).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanded via SplitMix64
    /// exactly like the real `rand` implementation expands small seeds.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used for seed expansion and as a cheap mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased-enough bounded sample via the multiply-shift trick
/// (Lemire); `span` must be non-zero.
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                match ((end - start) as u64).checked_add(1) {
                    Some(span) => start + bounded(rng, span) as $t,
                    None => rng.next_u64() as $t, // full u64 range
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value of the standard distribution of `T` (uniform in `[0, 1)`
    /// for `f64`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform sample from an integer range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++), API-compatible with
    /// `rand::rngs::SmallRng` as used in this workspace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro must not start at the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Export the full 256-bit xoshiro state, so a snapshot can
        /// capture the stream position exactly.
        #[inline]
        pub fn get_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state previously exported with
        /// [`SmallRng::get_state`]. The all-zero state is a fixed point
        /// of xoshiro (it can never be exported by a live generator),
        /// so it falls back to the same escape state the seed path
        /// uses rather than producing a degenerate stream.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{bounded_pub, RngCore};

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_pub(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[inline]
fn bounded_pub<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    bounded(rng, span)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..37 {
            a.gen::<u64>(); // advance to a mid-stream position
        }
        let state = a.get_state();
        let mut b = SmallRng::from_state(state);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        assert_eq!(a.get_state(), b.get_state());
        // The all-zero state (unreachable from a live stream) maps to
        // the same escape state the seed path uses, never a stuck RNG.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.gen::<u64>(), z.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = r.gen::<f64>();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn range_samples_cover_support() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = SmallRng::seed_from_u64(9);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
