//! Microbenchmarks of the path-calculation heuristics: cost of
//! computing a path set, the inner operation of everything else.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lmpr_core::{DModK, Disjoint, DisjointStride, RandomK, Router, ShiftOne, Umulti};
use xgft::{PnId, Topology, XgftSpec};

fn bench_path_sets(c: &mut Criterion) {
    // The paper's largest topology: 24-port 3-tree, 144 paths per far pair.
    let topo = Topology::new(XgftSpec::m_port_n_tree(24, 3).unwrap());
    let pairs: Vec<(PnId, PnId)> = (0..64u32)
        .map(|i| (PnId(i * 37 % 3456), PnId((i * 53 + 1234) % 3456)))
        .collect();
    let mut group = c.benchmark_group("path_set/24port3tree");
    let routers: Vec<(&str, Box<dyn Router>)> = vec![
        ("dmodk", Box::new(DModK)),
        ("shift1_8", Box::new(ShiftOne::new(8))),
        ("disjoint_8", Box::new(Disjoint::new(8))),
        ("stride_8", Box::new(DisjointStride::new(8))),
        ("random_8", Box::new(RandomK::new(8, 1))),
        ("umulti", Box::new(Umulti)),
    ];
    for (name, r) in &routers {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                for &(s, d) in &pairs {
                    r.fill_paths(&topo, s, d, &mut buf);
                    black_box(buf.len());
                }
            })
        });
    }
    group.finish();
}

fn bench_walk_path(c: &mut Criterion) {
    let topo = Topology::new(XgftSpec::m_port_n_tree(24, 3).unwrap());
    let (s, d) = (PnId(0), PnId(3455));
    c.bench_function("walk_path/24port3tree/far_pair", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in topo.all_paths(s, d) {
                topo.walk_path(s, d, p, |l| acc += l.0 as u64);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_path_sets, bench_walk_path);
criterion_main!(benches);
