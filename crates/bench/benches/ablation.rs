//! Ablations of design choices DESIGN.md calls out:
//!
//! * `Disjoint` (paper recursion) vs `DisjointStride` (alternative
//!   reading of the garbled worked example) — flow-level quality on a
//!   fixed permutation batch;
//! * path-selection policies in the flit simulator — short fixed-load
//!   runs measuring delivered flits.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lmpr_core::{Disjoint, DisjointStride, Router};
use lmpr_flitsim::{FlitSim, PathPolicy, SimConfig};
use lmpr_flowsim::LinkLoads;
use lmpr_traffic::{random_permutation, TrafficMatrix};
use xgft::{Topology, XgftSpec};

fn disjoint_variants_quality(c: &mut Criterion) {
    let topo = Topology::new(XgftSpec::m_port_n_tree(16, 3).unwrap());
    let tms: Vec<TrafficMatrix> = (0..8u64)
        .map(|s| TrafficMatrix::permutation(&random_permutation(topo.num_pns(), s)))
        .collect();
    let mut group = c.benchmark_group("ablation/disjoint_variant");
    for (name, r) in [
        ("recursion", Box::new(Disjoint::new(8)) as Box<dyn Router>),
        ("stride", Box::new(DisjointStride::new(8))),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut loads = LinkLoads::zero(&topo);
            b.iter(|| {
                let mut acc = 0.0;
                for tm in &tms {
                    loads.clear();
                    loads.add(&topo, &r, tm);
                    acc += loads.max_load();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn path_policy_throughput(c: &mut Criterion) {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).unwrap());
    let mut group = c.benchmark_group("ablation/path_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("round_robin", PathPolicy::RoundRobin),
        ("per_packet_random", PathPolicy::PerPacketRandom),
        ("per_message_random", PathPolicy::PerMessageRandom),
    ] {
        let cfg = SimConfig {
            warmup_cycles: 500,
            measure_cycles: 2_000,
            offered_load: 0.7,
            path_policy: policy,
            ..SimConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let stats = FlitSim::simulate(&topo, Disjoint::new(8), cfg).expect("valid config");
                black_box(stats.delivered_flits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, disjoint_variants_quality, path_policy_throughput);
criterion_main!(benches);
