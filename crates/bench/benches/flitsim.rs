//! Flit-simulator core speed: cycles per second stepping the paper's
//! Table-1 topology at a medium load.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lmpr_core::{DModK, Disjoint};
use lmpr_flitsim::{FlitSim, SimConfig};
use xgft::{Topology, XgftSpec};

fn bench_step(c: &mut Criterion) {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).unwrap());
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: u64::MAX,
        offered_load: 0.6,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("flitsim_step/8port3tree");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("dmodk_1kcycles"), |b| {
        let mut sim = FlitSim::new(&topo, DModK, cfg).expect("valid config");
        b.iter(|| {
            for _ in 0..1_000 {
                sim.step();
            }
            black_box(sim.now())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("disjoint8_1kcycles"), |b| {
        let mut sim = FlitSim::new(&topo, Disjoint::new(8), cfg).expect("valid config");
        b.iter(|| {
            for _ in 0..1_000 {
                sim.step();
            }
            black_box(sim.now())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
