//! The Figure-4 inner loop as a benchmark: max-link-load evaluation of
//! one random permutation per routing scheme.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lmpr_core::{DModK, Disjoint, Router, ShiftOne, Umulti};
use lmpr_flowsim::LinkLoads;
use lmpr_traffic::{random_permutation, TrafficMatrix};
use xgft::{Topology, XgftSpec};

fn bench_permutation_eval(c: &mut Criterion) {
    for (tree, spec) in [
        ("16port2tree", XgftSpec::m_port_n_tree(16, 2).unwrap()),
        ("16port3tree", XgftSpec::m_port_n_tree(16, 3).unwrap()),
    ] {
        let topo = Topology::new(spec);
        let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), 42));
        let mut group = c.benchmark_group(format!("fig4_eval/{tree}"));
        let routers: Vec<(&str, Box<dyn Router>)> = vec![
            ("dmodk", Box::new(DModK)),
            ("shift1_4", Box::new(ShiftOne::new(4))),
            ("disjoint_4", Box::new(Disjoint::new(4))),
            ("umulti", Box::new(Umulti)),
        ];
        for (name, r) in &routers {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                let mut loads = LinkLoads::zero(&topo);
                b.iter(|| {
                    loads.clear();
                    loads.add(&topo, r, &tm);
                    black_box(loads.max_load())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_permutation_eval);
criterion_main!(benches);
