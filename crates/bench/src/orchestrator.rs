//! Supervised, resumable execution of the chaos sweep.
//!
//! [`SweepOrchestrator`] runs the exact experiment grid of
//! [`chaos::run`](crate::chaos::run) — same plans, same seeds, same
//! assembly — but supervises every cell:
//!
//! * **Journaling.** Each completed seed's outcome is appended to
//!   `results_dir/journal.json` (written atomically via a temp file +
//!   rename), so a crash never loses finished work. On restart the
//!   orchestrator loads the journal, validates it against the current
//!   plan, and skips completed cells.
//! * **Checkpoints.** Long simulations snapshot their complete state
//!   (the crash-consistent [`FlitSim`] snapshot format) every
//!   `checkpoint_cycles`; a retry or a restarted process resumes the
//!   seed mid-simulation instead of recomputing it.
//! * **Deadlines and retries.** Each cell attempt runs under a
//!   wall-clock deadline; a timed-out or panicked attempt is retried
//!   with capped exponential backoff, up to `max_attempts`. Panics are
//!   isolated with `catch_unwind` and recorded as structured
//!   [`SweepError`]s — one stuck cell cannot take down the sweep.
//!
//! The crown property: because the journal stores *exact* outcomes
//! (f64s in shortest-roundtrip decimal, counters as integers) and the
//! final document is assembled by the same code path as the inline
//! harness, a sweep that crashed and resumed — any number of times —
//! serializes **byte-identically** to an uninterrupted `chaos::run`.
//! The golden test and the `ci.sh` SIGKILL smoke both enforce this.

use crate::chaos::{
    assemble, finish_scripted_seed, finish_sweep_seed, ChaosOutcomes, ScriptedPlan,
    ScriptedSeedOutcome, SeedOutcome, SweepPlan, SweepSeedOutcome,
};
use crate::jsonio::{self, Value};
use crate::{document_from_parts, failure_to_json, json_string, Failure};
use lmpr_core::{Router, RouterKind};
use lmpr_flitsim::{FlitSim, MonitorLog};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Journal schema version; bumped when the layout changes so stale
/// journals are discarded instead of misread.
pub const JOURNAL_VERSION: u64 = 1;

/// Tuning knobs of a supervised sweep.
#[derive(Debug, Clone)]
pub struct OrchestratorOptions {
    /// Directory holding `journal.json` and the `snapshots/` subdir.
    pub results_dir: PathBuf,
    /// Statistical budget, forwarded to the chaos plans.
    pub quick: bool,
    /// Wall-clock budget of one cell attempt.
    pub deadline: Duration,
    /// Simulated cycles between state checkpoints.
    pub checkpoint_cycles: u64,
    /// Attempts per cell before it is marked failed.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the retry delay.
    pub backoff_cap: Duration,
    /// Stop (as if killed) after completing this many cells — used by
    /// the kill/resume tests to interrupt at a deterministic journal
    /// point.
    pub max_cells: Option<usize>,
}

impl OrchestratorOptions {
    /// Defaults: 5-minute attempt deadline, checkpoint every 2 000
    /// cycles, 3 attempts, 100 ms → 5 s backoff.
    pub fn new(results_dir: impl Into<PathBuf>, quick: bool) -> Self {
        OrchestratorOptions {
            results_dir: results_dir.into(),
            quick,
            deadline: Duration::from_secs(300),
            checkpoint_cycles: 2_000,
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            max_cells: None,
        }
    }

    /// The delay before the next attempt of `cell`, after `attempt`
    /// failures (1-based): capped exponential on `backoff_base`, then
    /// deterministic seeded jitter scaling it into `[50%, 100%]`. The
    /// jitter is a pure function of `(cell, attempt)`, so a resumed
    /// sweep replays the same delays — but distinct cells that fail
    /// simultaneously (say, a shared deadline misconfiguration) spread
    /// their retries out instead of herding.
    pub fn retry_delay(&self, cell: &str, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap);
        // FNV-1a over the cell id folded with the attempt, then a
        // splitmix-style finalizer so low-entropy ids still yield
        // uniform high bits.
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        for &b in cell.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = (h ^ attempt as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(0.5 + 0.5 * frac)
    }
}

/// Why a cell attempt (or the whole cell) was abandoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepErrorKind {
    /// The attempt panicked; the payload is in `message`.
    Panicked,
    /// The attempt exceeded its wall-clock deadline.
    TimedOut,
}

impl SweepErrorKind {
    fn tag(&self) -> &'static str {
        match self {
            SweepErrorKind::Panicked => "panicked",
            SweepErrorKind::TimedOut => "timed-out",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "panicked" => Some(SweepErrorKind::Panicked),
            "timed-out" => Some(SweepErrorKind::TimedOut),
            _ => None,
        }
    }
}

/// A cell that exhausted its attempts, as recorded in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Journal id of the cell (`sweep-r2-s1`, `scripted`).
    pub cell: String,
    /// Attempts consumed.
    pub attempts: u32,
    pub kind: SweepErrorKind,
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} {} after {} attempts: {}",
            self.cell,
            self.kind.tag(),
            self.attempts,
            self.message
        )
    }
}

/// What a supervision pass accomplished.
#[derive(Debug)]
pub struct SweepReport {
    /// True once every cell is done and the document was assembled.
    pub completed: bool,
    /// The assembled results document — present only when `completed`.
    pub document: Option<String>,
    /// Invariant violations surfaced at assembly (0 until `completed`).
    pub violations: u32,
    /// Experiment-level failures recorded in the document.
    pub failure_count: usize,
    /// Cells that exhausted their attempts.
    pub cell_errors: Vec<SweepError>,
    /// Cells newly completed (or newly failed) by *this* pass.
    pub cells_run: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellStatus {
    Pending,
    Done,
    Failed,
}

#[derive(Debug, Clone, Copy)]
enum CellKind {
    Sweep { ri: usize, si: usize },
    Scripted,
}

struct CellState {
    id: String,
    kind: CellKind,
    status: CellStatus,
    attempts: u32,
    error: Option<SweepError>,
    /// Completed seed outcomes (sweep cells).
    sweep_seeds: Vec<SeedOutcome<SweepSeedOutcome>>,
    /// Completed seed outcomes (the scripted cell).
    scripted_seeds: Vec<SeedOutcome<ScriptedSeedOutcome>>,
    /// Window deltas of the scripted seed currently in progress,
    /// paired with an on-disk simulator snapshot.
    partial_deliveries: Option<Vec<u64>>,
}

/// Supervised, journaled, resumable runner of the chaos experiment
/// grid. See the module docs for the guarantees.
pub struct SweepOrchestrator {
    opts: OrchestratorOptions,
    plan: SweepPlan,
    splan: ScriptedPlan,
    cells: Vec<CellState>,
}

impl SweepOrchestrator {
    /// Create the orchestrator, loading (and validating) an existing
    /// journal from `results_dir` if one is present. An unreadable,
    /// corrupt, or plan-mismatched journal is discarded and the sweep
    /// starts fresh — never a panic.
    pub fn new(opts: OrchestratorOptions) -> io::Result<Self> {
        let plan = SweepPlan::new(opts.quick);
        let splan = ScriptedPlan::new(opts.quick);
        std::fs::create_dir_all(opts.results_dir.join("snapshots"))?;
        let mut cells = fresh_cells(&plan);
        match std::fs::read_to_string(opts.results_dir.join("journal.json")) {
            Ok(text) => match load_journal(&text, opts.quick, &cells) {
                Ok(loaded) => cells = loaded,
                Err(why) => {
                    eprintln!("orchestrator: discarding journal ({why}); starting fresh");
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(SweepOrchestrator {
            opts,
            plan,
            splan,
            cells,
        })
    }

    /// Run every pending cell (up to `max_cells`), then — if the whole
    /// grid is done — assemble the final document. `Err` is reserved
    /// for I/O failures persisting the journal; experiment failures,
    /// timeouts and panics are recorded per cell instead.
    pub fn run(&mut self) -> io::Result<SweepReport> {
        let mut cells_run = 0usize;
        for i in 0..self.cells.len() {
            if self.cells[i].status != CellStatus::Pending {
                continue;
            }
            if let Some(cap) = self.opts.max_cells {
                if cells_run >= cap {
                    eprintln!(
                        "orchestrator: stopping after {cells_run} cells (--max-cells); \
                         journal is resumable"
                    );
                    break;
                }
            }
            self.run_cell(i)?;
            cells_run += 1;
        }

        let cell_errors: Vec<SweepError> =
            self.cells.iter().filter_map(|c| c.error.clone()).collect();
        if self.cells.iter().all(|c| c.status == CellStatus::Done) {
            let outcomes = self.collect_outcomes();
            let assembled = assemble(self.opts.quick, &self.plan, &self.splan, &outcomes);
            let document = document_from_parts(&assembled.records, &assembled.failure_objects);
            Ok(SweepReport {
                completed: true,
                document: Some(document),
                violations: assembled.violations,
                failure_count: assembled.failure_objects.len(),
                cell_errors,
                cells_run,
            })
        } else {
            Ok(SweepReport {
                completed: false,
                document: None,
                violations: 0,
                failure_count: 0,
                cell_errors,
                cells_run,
            })
        }
    }

    fn collect_outcomes(&self) -> ChaosOutcomes {
        let mut sweep = Vec::with_capacity(self.plan.rates.len());
        for ri in 0..self.plan.rates.len() {
            let mut row = Vec::with_capacity(self.plan.schemes.len());
            for si in 0..self.plan.schemes.len() {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| matches!(c.kind, CellKind::Sweep { ri: r, si: s } if r == ri && s == si))
                    .map(|c| c.sweep_seeds.clone())
                    .unwrap_or_default();
                row.push(cell);
            }
            sweep.push(row);
        }
        let scripted = self
            .cells
            .iter()
            .find(|c| matches!(c.kind, CellKind::Scripted))
            .map(|c| c.scripted_seeds.clone())
            .unwrap_or_default();
        ChaosOutcomes { sweep, scripted }
    }

    /// Drive one cell to done-or-failed, retrying with backoff.
    fn run_cell(&mut self, i: usize) -> io::Result<()> {
        loop {
            self.cells[i].attempts += 1;
            let deadline = Instant::now() + self.opts.deadline;
            let attempt = {
                let this = AssertUnwindSafe(&mut *self);
                catch_unwind(move || {
                    let this = this;
                    this.0.attempt_cell(i, deadline)
                })
            };
            let error = match attempt {
                Ok(Ok(true)) => {
                    self.cells[i].status = CellStatus::Done;
                    self.persist_journal()?;
                    return Ok(());
                }
                Ok(Ok(false)) => SweepError {
                    cell: self.cells[i].id.clone(),
                    attempts: self.cells[i].attempts,
                    kind: SweepErrorKind::TimedOut,
                    message: format!("attempt exceeded its {:?} deadline", self.opts.deadline),
                },
                Ok(Err(e)) => return Err(e),
                Err(payload) => SweepError {
                    cell: self.cells[i].id.clone(),
                    attempts: self.cells[i].attempts,
                    kind: SweepErrorKind::Panicked,
                    message: panic_message(payload.as_ref()),
                },
            };
            eprintln!("orchestrator: {error}");
            if self.cells[i].attempts >= self.opts.max_attempts {
                self.cells[i].status = CellStatus::Failed;
                self.cells[i].error = Some(error);
                self.persist_journal()?;
                return Ok(());
            }
            self.persist_journal()?;
            let delay = self
                .opts
                .retry_delay(&self.cells[i].id, self.cells[i].attempts);
            std::thread::sleep(delay);
        }
    }

    /// One attempt at a cell: run its remaining seeds, journaling each
    /// as it completes and checkpointing within long runs.
    /// `Ok(true)` = the cell is complete, `Ok(false)` = the deadline
    /// expired (with a fresh checkpoint on disk).
    fn attempt_cell(&mut self, i: usize, deadline: Instant) -> io::Result<bool> {
        match self.cells[i].kind {
            CellKind::Sweep { ri, si } => self.attempt_sweep_cell(i, ri, si, deadline),
            CellKind::Scripted => self.attempt_scripted_cell(i, deadline),
        }
    }

    fn attempt_sweep_cell(
        &mut self,
        i: usize,
        ri: usize,
        si: usize,
        deadline: Instant,
    ) -> io::Result<bool> {
        let rate = self.plan.rates[ri];
        let (router, k) = self.plan.schemes[si];
        let horizon = self.plan.cfg.horizon();
        while (self.cells[i].sweep_seeds.len() as u64) < self.plan.seeds {
            let seed = self.cells[i].sweep_seeds.len() as u64;
            let snap_path = self.snapshot_path(i, seed);

            // Resume from the checkpoint if one is on disk and valid;
            // otherwise build the seed's simulator from scratch.
            let mut sim = match load_snapshot(&snap_path, router) {
                Some(sim) => sim,
                None => match self.plan.build_sim(rate, router, seed) {
                    Ok(sim) => sim,
                    Err(e) => {
                        // An experiment-level failure, exactly as the
                        // inline harness records it.
                        let display = e.to_string();
                        let f = Failure {
                            experiment: "chaos-sweep".into(),
                            topology: self.plan.label.clone(),
                            scheme: router.name(),
                            k,
                            x: rate,
                            seed,
                            error: e,
                        };
                        self.finish_sweep_seed_entry(
                            i,
                            &snap_path,
                            SeedOutcome::Failed {
                                json: failure_to_json(&f),
                                display,
                            },
                        )?;
                        continue;
                    }
                },
            };

            let mut log = MonitorLog::new();
            let outcome = loop {
                let until = sim.now().saturating_add(self.opts.checkpoint_cycles);
                match sim.run_monitored_until(until, 1_000, &mut log) {
                    Err(e) => {
                        let display = e.to_string();
                        let f = Failure {
                            experiment: "chaos-sweep".into(),
                            topology: self.plan.label.clone(),
                            scheme: router.name(),
                            k,
                            x: rate,
                            seed,
                            error: e,
                        };
                        break SeedOutcome::Failed {
                            json: failure_to_json(&f),
                            display,
                        };
                    }
                    Ok(fatal) => {
                        let done = fatal || sim.now() >= horizon;
                        if done {
                            if !fatal {
                                log.absorb(sim.check_invariants());
                            }
                            let stats = sim.stats();
                            let findings = std::mem::take(&mut log).into_findings();
                            break SeedOutcome::Ok(finish_sweep_seed(&sim, stats, findings));
                        }
                        // Mid-run checkpoint: persist, then honor the
                        // attempt deadline (the checkpoint makes the
                        // timeout cheap to retry).
                        write_atomic(&snap_path, &sim.snapshot())?;
                        if Instant::now() >= deadline {
                            return Ok(false);
                        }
                    }
                }
            };
            self.finish_sweep_seed_entry(i, &snap_path, outcome)?;
        }
        Ok(true)
    }

    fn finish_sweep_seed_entry(
        &mut self,
        i: usize,
        snap_path: &Path,
        outcome: SeedOutcome<SweepSeedOutcome>,
    ) -> io::Result<()> {
        self.cells[i].sweep_seeds.push(outcome);
        let _ = std::fs::remove_file(snap_path);
        self.persist_journal()
    }

    fn attempt_scripted_cell(&mut self, i: usize, deadline: Instant) -> io::Result<bool> {
        let window = self.splan.window;
        let n_windows = self.splan.n_windows() as u64;
        let windows_per_checkpoint = (self.opts.checkpoint_cycles / window).max(1);
        while (self.cells[i].scripted_seeds.len() as u64) < self.splan.seeds {
            let seed = self.cells[i].scripted_seeds.len() as u64;
            let snap_path = self.snapshot_path(i, seed);

            // Resume mid-seed only when the snapshot and the journaled
            // window deltas agree on the cycle; any inconsistency
            // restarts the seed (it is deterministic either way).
            let resumed = self.cells[i]
                .partial_deliveries
                .take()
                .and_then(|deliveries| {
                    let sim = load_snapshot(&snap_path, RouterKind::DModK)?;
                    (sim.now() == deliveries.len() as u64 * window).then_some((sim, deliveries))
                });
            let (mut sim, mut deliveries) = match resumed {
                Some(pair) => pair,
                None => match self.splan.build_sim(seed) {
                    Ok(sim) => (sim, Vec::new()),
                    Err(e) => {
                        let display = e.to_string();
                        let f = self.splan.failure(seed, e);
                        self.finish_scripted_seed_entry(
                            i,
                            &snap_path,
                            SeedOutcome::Failed {
                                json: failure_to_json(&f),
                                display,
                            },
                        )?;
                        continue;
                    }
                },
            };

            let mut prev_delivered = sim.lifetime_counters().1;
            for w in deliveries.len() as u64..n_windows {
                while sim.now() < (w + 1) * window {
                    sim.step();
                }
                let (_, delivered) = sim.lifetime_counters();
                deliveries.push(delivered - prev_delivered);
                prev_delivered = delivered;
                let at_checkpoint = (w + 1).is_multiple_of(windows_per_checkpoint);
                if at_checkpoint && w + 1 < n_windows {
                    write_atomic(&snap_path, &sim.snapshot())?;
                    self.cells[i].partial_deliveries = Some(deliveries.clone());
                    self.persist_journal()?;
                    if Instant::now() >= deadline {
                        return Ok(false);
                    }
                }
            }
            let outcome = SeedOutcome::Ok(finish_scripted_seed(&mut sim, deliveries));
            self.finish_scripted_seed_entry(i, &snap_path, outcome)?;
        }
        Ok(true)
    }

    fn finish_scripted_seed_entry(
        &mut self,
        i: usize,
        snap_path: &Path,
        outcome: SeedOutcome<ScriptedSeedOutcome>,
    ) -> io::Result<()> {
        self.cells[i].scripted_seeds.push(outcome);
        self.cells[i].partial_deliveries = None;
        let _ = std::fs::remove_file(snap_path);
        self.persist_journal()
    }

    fn snapshot_path(&self, i: usize, seed: u64) -> PathBuf {
        self.opts
            .results_dir
            .join("snapshots")
            .join(format!("{}-seed{}.snap", self.cells[i].id, seed))
    }

    fn persist_journal(&self) -> io::Result<()> {
        let text = journal_to_json(self.opts.quick, &self.cells);
        write_atomic(&self.opts.results_dir.join("journal.json"), text.as_bytes())
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Write-then-rename so readers (and crashed writers) never observe a
/// half-written file.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Restore a checkpoint if the file exists and passes the snapshot
/// format's integrity checks; a corrupt file is deleted and the seed
/// recomputes from scratch.
fn load_snapshot<R: Router>(path: &Path, router: R) -> Option<FlitSim<R>> {
    let bytes = std::fs::read(path).ok()?;
    match FlitSim::restore(router, &bytes) {
        Ok(sim) => {
            eprintln!(
                "orchestrator: resuming {} from cycle {}",
                path.display(),
                sim.now()
            );
            Some(sim)
        }
        Err(e) => {
            eprintln!(
                "orchestrator: discarding corrupt checkpoint {}: {e}",
                path.display()
            );
            let _ = std::fs::remove_file(path);
            None
        }
    }
}

fn fresh_cells(plan: &SweepPlan) -> Vec<CellState> {
    let mut cells = Vec::new();
    for ri in 0..plan.rates.len() {
        for si in 0..plan.schemes.len() {
            cells.push(CellState {
                id: format!("sweep-r{ri}-s{si}"),
                kind: CellKind::Sweep { ri, si },
                status: CellStatus::Pending,
                attempts: 0,
                error: None,
                sweep_seeds: Vec::new(),
                scripted_seeds: Vec::new(),
                partial_deliveries: None,
            });
        }
    }
    cells.push(CellState {
        id: "scripted".to_owned(),
        kind: CellKind::Scripted,
        status: CellStatus::Pending,
        attempts: 0,
        error: None,
        sweep_seeds: Vec::new(),
        scripted_seeds: Vec::new(),
        partial_deliveries: None,
    });
    cells
}

// ---------------------------------------------------------------------
// Journal serialization. Hand-rolled like the rest of the crate's JSON;
// f64s are journaled as *strings* of their shortest-roundtrip decimal
// form so reloading recovers the exact bits.
// ---------------------------------------------------------------------

fn json_exact_f64(v: f64) -> String {
    json_string(&format!("{v}"))
}

fn journal_to_json(quick: bool, cells: &[CellState]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"version\": {JOURNAL_VERSION},\n"));
    out.push_str("  \"harness\": \"chaos\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_string(&cell.id)));
        let status = match cell.status {
            CellStatus::Pending => "pending",
            CellStatus::Done => "done",
            CellStatus::Failed => "failed",
        };
        out.push_str(&format!("      \"status\": \"{status}\",\n"));
        out.push_str(&format!("      \"attempts\": {},\n", cell.attempts));
        if let Some(e) = &cell.error {
            out.push_str(&format!(
                "      \"error\": {{\"kind\": \"{}\", \"message\": {}}},\n",
                e.kind.tag(),
                json_string(&e.message)
            ));
        }
        if let Some(partial) = &cell.partial_deliveries {
            out.push_str(&format!(
                "      \"partial_deliveries\": {},\n",
                u64_array(partial)
            ));
        }
        out.push_str("      \"seeds\": [");
        let mut first = true;
        let mut push_seed = |body: String| {
            if first {
                out.push('\n');
                first = false;
            } else {
                out.push_str(",\n");
            }
            out.push_str("        ");
            out.push_str(&body);
        };
        match cell.kind {
            CellKind::Sweep { .. } => {
                for (seed, so) in cell.sweep_seeds.iter().enumerate() {
                    push_seed(sweep_seed_to_json(seed, so));
                }
            }
            CellKind::Scripted => {
                for (seed, so) in cell.scripted_seeds.iter().enumerate() {
                    push_seed(scripted_seed_to_json(seed, so));
                }
            }
        }
        if !first {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn string_array(values: &[String]) -> String {
    let items: Vec<String> = values.iter().map(|s| json_string(s)).collect();
    format!("[{}]", items.join(", "))
}

fn sweep_seed_to_json(seed: usize, so: &SeedOutcome<SweepSeedOutcome>) -> String {
    match so {
        SeedOutcome::Ok(o) => format!(
            "{{\"seed\": {seed}, \"ok\": {{\"thru\": {}, \"p50\": {}, \"p99\": {}, \
             \"retx\": {}, \"reconv\": {}, \"max_reconv\": {}, \"errors\": {}}}}}",
            json_exact_f64(o.thru),
            json_exact_f64(o.p50),
            json_exact_f64(o.p99),
            json_exact_f64(o.retx),
            json_exact_f64(o.reconv),
            o.max_reconv,
            string_array(&o.errors)
        ),
        SeedOutcome::Failed { json, display } => failed_seed_to_json(seed, json, display),
    }
}

fn scripted_seed_to_json(seed: usize, so: &SeedOutcome<ScriptedSeedOutcome>) -> String {
    match so {
        SeedOutcome::Ok(o) => format!(
            "{{\"seed\": {seed}, \"ok\": {{\"deliveries\": {}, \"mean_reconverge\": {}, \
             \"errors\": {}}}}}",
            u64_array(&o.deliveries),
            json_exact_f64(o.mean_reconverge),
            string_array(&o.errors)
        ),
        SeedOutcome::Failed { json, display } => failed_seed_to_json(seed, json, display),
    }
}

fn failed_seed_to_json(seed: usize, json: &str, display: &str) -> String {
    format!(
        "{{\"seed\": {seed}, \"failed\": {{\"json\": {}, \"display\": {}}}}}",
        json_string(json),
        json_string(display)
    )
}

// ---------------------------------------------------------------------
// Journal loading. Any structural problem yields Err(reason) and the
// caller falls back to a fresh sweep.
// ---------------------------------------------------------------------

fn load_journal(text: &str, quick: bool, expected: &[CellState]) -> Result<Vec<CellState>, String> {
    let doc = jsonio::parse(text).map_err(|e| e.to_string())?;
    if doc.get("version").and_then(Value::as_u64) != Some(JOURNAL_VERSION) {
        return Err("journal version mismatch".into());
    }
    if doc.get("harness").and_then(Value::as_str) != Some("chaos") {
        return Err("journal is for a different harness".into());
    }
    if doc.get("quick").and_then(Value::as_bool) != Some(quick) {
        return Err("journal was recorded at a different statistical budget".into());
    }
    let cells_json = doc
        .get("cells")
        .and_then(Value::as_arr)
        .ok_or("journal has no cells array")?;
    if cells_json.len() != expected.len() {
        return Err("journal cell grid does not match the plan".into());
    }
    let mut cells = Vec::with_capacity(expected.len());
    for (cell_json, proto) in cells_json.iter().zip(expected) {
        if cell_json.get("id").and_then(Value::as_str) != Some(proto.id.as_str()) {
            return Err(format!("journal cell order mismatch at {}", proto.id));
        }
        let status = match cell_json.get("status").and_then(Value::as_str) {
            Some("pending") => CellStatus::Pending,
            Some("done") => CellStatus::Done,
            Some("failed") => CellStatus::Failed,
            _ => return Err(format!("cell {} has an invalid status", proto.id)),
        };
        let attempts = cell_json
            .get("attempts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("cell {} lacks attempts", proto.id))?
            as u32;
        let error = match cell_json.get("error") {
            None => None,
            Some(e) => Some(SweepError {
                cell: proto.id.clone(),
                attempts,
                kind: e
                    .get("kind")
                    .and_then(Value::as_str)
                    .and_then(SweepErrorKind::from_tag)
                    .ok_or_else(|| format!("cell {} has an invalid error kind", proto.id))?,
                message: e
                    .get("message")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("cell {} error lacks a message", proto.id))?
                    .to_owned(),
            }),
        };
        let partial_deliveries = match cell_json.get("partial_deliveries") {
            None => None,
            Some(v) => Some(
                parse_u64_array(v)
                    .ok_or_else(|| format!("cell {} has malformed partial deliveries", proto.id))?,
            ),
        };
        let seeds = cell_json
            .get("seeds")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("cell {} lacks seeds", proto.id))?;
        let mut state = CellState {
            id: proto.id.clone(),
            kind: proto.kind,
            status,
            attempts,
            error,
            sweep_seeds: Vec::new(),
            scripted_seeds: Vec::new(),
            partial_deliveries,
        };
        for (n, seed_json) in seeds.iter().enumerate() {
            if seed_json.get("seed").and_then(Value::as_u64) != Some(n as u64) {
                return Err(format!("cell {} seeds are out of order", proto.id));
            }
            match proto.kind {
                CellKind::Sweep { .. } => state.sweep_seeds.push(
                    parse_seed(seed_json, parse_sweep_ok)
                        .ok_or_else(|| format!("cell {} seed {n} is malformed", proto.id))?,
                ),
                CellKind::Scripted => state.scripted_seeds.push(
                    parse_seed(seed_json, parse_scripted_ok)
                        .ok_or_else(|| format!("cell {} seed {n} is malformed", proto.id))?,
                ),
            }
        }
        cells.push(state);
    }
    Ok(cells)
}

fn parse_seed<T>(
    seed_json: &Value,
    parse_ok: impl Fn(&Value) -> Option<T>,
) -> Option<SeedOutcome<T>> {
    if let Some(ok) = seed_json.get("ok") {
        return parse_ok(ok).map(SeedOutcome::Ok);
    }
    let failed = seed_json.get("failed")?;
    Some(SeedOutcome::Failed {
        json: failed.get("json")?.as_str()?.to_owned(),
        display: failed.get("display")?.as_str()?.to_owned(),
    })
}

/// An f64 journaled as its shortest-roundtrip decimal string.
fn parse_exact_f64(v: &Value) -> Option<f64> {
    v.as_str()?.parse().ok()
}

fn parse_u64_array(v: &Value) -> Option<Vec<u64>> {
    v.as_arr()?.iter().map(Value::as_u64).collect()
}

fn parse_string_array(v: &Value) -> Option<Vec<String>> {
    v.as_arr()?
        .iter()
        .map(|s| s.as_str().map(str::to_owned))
        .collect()
}

fn parse_sweep_ok(ok: &Value) -> Option<SweepSeedOutcome> {
    Some(SweepSeedOutcome {
        thru: parse_exact_f64(ok.get("thru")?)?,
        p50: parse_exact_f64(ok.get("p50")?)?,
        p99: parse_exact_f64(ok.get("p99")?)?,
        retx: parse_exact_f64(ok.get("retx")?)?,
        reconv: parse_exact_f64(ok.get("reconv")?)?,
        max_reconv: ok.get("max_reconv")?.as_u64()?,
        errors: parse_string_array(ok.get("errors")?)?,
    })
}

fn parse_scripted_ok(ok: &Value) -> Option<ScriptedSeedOutcome> {
    Some(ScriptedSeedOutcome {
        deliveries: parse_u64_array(ok.get("deliveries")?)?,
        mean_reconverge: parse_exact_f64(ok.get("mean_reconverge")?)?,
        errors: parse_string_array(ok.get("errors")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cells() -> Vec<CellState> {
        let plan = SweepPlan::new(true);
        let mut cells = fresh_cells(&plan);
        cells[0].status = CellStatus::Done;
        cells[0].attempts = 1;
        cells[0].sweep_seeds = vec![
            SeedOutcome::Ok(SweepSeedOutcome {
                thru: 0.3437152777777778,
                p50: 41.0,
                p99: 153.0,
                retx: 0.0021857923497267762,
                reconv: f64::NAN,
                max_reconv: 212,
                errors: vec![],
            }),
            SeedOutcome::Failed {
                json: "    {\n      \"experiment\": \"chaos-sweep\"\n    }".into(),
                display: "deadlock at cycle 12".into(),
            },
        ];
        cells[1].attempts = 2;
        cells[1].error = Some(SweepError {
            cell: cells[1].id.clone(),
            attempts: 2,
            kind: SweepErrorKind::Panicked,
            message: "index out of bounds".into(),
        });
        cells[1].status = CellStatus::Failed;
        let last = cells.len() - 1;
        cells[last].partial_deliveries = Some(vec![417, 1290, 1288]);
        cells[last].scripted_seeds = vec![SeedOutcome::Ok(ScriptedSeedOutcome {
            deliveries: vec![400, 1280, 1281, 1279],
            mean_reconverge: 2350.5,
            errors: vec!["RT-CONSERVE: flit conservation broke".into()],
        })];
        cells
    }

    #[test]
    fn journal_roundtrips_exactly() {
        let cells = sample_cells();
        let text = journal_to_json(true, &cells);
        let expected = fresh_cells(&SweepPlan::new(true));
        let loaded = load_journal(&text, true, &expected).expect("journal reloads");
        assert_eq!(loaded.len(), cells.len());
        for (a, b) in loaded.iter().zip(cells.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.status, b.status);
            assert_eq!(a.attempts, b.attempts);
            assert_eq!(a.error, b.error);
            assert_eq!(a.partial_deliveries, b.partial_deliveries);
            assert_eq!(a.scripted_seeds, b.scripted_seeds);
            // NaN-bearing outcomes compare by bits, not PartialEq.
            assert_eq!(a.sweep_seeds.len(), b.sweep_seeds.len());
            for (x, y) in a.sweep_seeds.iter().zip(b.sweep_seeds.iter()) {
                match (x, y) {
                    (SeedOutcome::Ok(x), SeedOutcome::Ok(y)) => {
                        assert_eq!(x.thru.to_bits(), y.thru.to_bits());
                        assert_eq!(x.p50.to_bits(), y.p50.to_bits());
                        assert_eq!(x.p99.to_bits(), y.p99.to_bits());
                        assert_eq!(x.retx.to_bits(), y.retx.to_bits());
                        assert_eq!(x.reconv.is_nan(), y.reconv.is_nan());
                        assert_eq!(x.max_reconv, y.max_reconv);
                        assert_eq!(x.errors, y.errors);
                    }
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn mismatched_journals_are_discarded() {
        let cells = sample_cells();
        let text = journal_to_json(true, &cells);
        let expected = fresh_cells(&SweepPlan::new(true));
        // Wrong budget.
        assert!(load_journal(&text, false, &fresh_cells(&SweepPlan::new(false))).is_err());
        // Wrong version.
        let bumped = text.replace("\"version\": 1", "\"version\": 99");
        assert!(load_journal(&bumped, true, &expected).is_err());
        // Truncated file.
        assert!(load_journal(&text[..text.len() / 2], true, &expected).is_err());
        // Reordered cells.
        let swapped = text.replace("sweep-r0-s0", "sweep-r9-s9");
        assert!(load_journal(&swapped, true, &expected).is_err());
    }

    #[test]
    fn backoff_is_capped() {
        let opts = OrchestratorOptions::new("/tmp/unused", true);
        // Past the cap the jittered delay lives in [cap/2, cap].
        for attempt in [7u32, 16, 30, u32::MAX] {
            let d = opts.retry_delay("sweep-r0-s0", attempt);
            assert!(d <= opts.backoff_cap, "attempt {attempt}: {d:?} over cap");
            assert!(
                d >= opts.backoff_cap / 2,
                "attempt {attempt}: {d:?} under half-cap"
            );
        }
    }

    #[test]
    fn retry_delays_are_deterministic_jittered_and_spread() {
        let opts = OrchestratorOptions::new("/tmp/unused", true);

        // Deterministic: the same (cell, attempt) always waits the same.
        for attempt in 1..=6 {
            assert_eq!(
                opts.retry_delay("sweep-r1-s2", attempt),
                opts.retry_delay("sweep-r1-s2", attempt),
            );
        }

        // Bounded: attempt n sits in [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹] ∩ [0, cap].
        for attempt in 1..=6 {
            let base = opts
                .backoff_base
                .saturating_mul(1u32 << (attempt - 1))
                .min(opts.backoff_cap);
            let d = opts.retry_delay("scripted", attempt);
            assert!(d <= base, "attempt {attempt}: {d:?} > {base:?}");
            assert!(d >= base / 2, "attempt {attempt}: {d:?} < {:?}", base / 2);
        }

        // Anti-herding: simultaneous first retries of different cells
        // must not collapse onto one instant. With ≥50 ms of jitter
        // range, requiring ≥3 distinct delays among 6 cells is safe for
        // any non-degenerate hash.
        let cells = [
            "sweep-r0-s0",
            "sweep-r0-s1",
            "sweep-r1-s0",
            "sweep-r1-s1",
            "sweep-r2-s0",
            "scripted",
        ];
        let mut delays: Vec<Duration> = cells.iter().map(|c| opts.retry_delay(c, 1)).collect();
        delays.sort();
        delays.dedup();
        assert!(
            delays.len() >= 3,
            "first-retry delays herd together: {delays:?}"
        );
    }
}
