//! Minimal JSON reader for the orchestrator journal.
//!
//! The bench crate already *writes* JSON by hand (`json_string`,
//! `json_f64`); this module is the matching reader, so a resumed sweep
//! can load its journal without external dependencies. Two properties
//! matter here and shaped the design:
//!
//! * **Numbers keep their source text.** [`Value::Num`] stores the raw
//!   token; callers parse on demand. Journaled `f64`s are written with
//!   Rust's shortest-roundtrip formatting, so `text.parse::<f64>()`
//!   recovers the original value bit for bit — the foundation of the
//!   byte-identical-resume guarantee.
//! * **Reads never panic.** Malformed journals surface as a structured
//!   [`ParseError`] with a byte offset; the orchestrator treats any
//!   parse failure as "no journal" and starts fresh.

use std::fmt;

/// A parsed JSON value. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// A number as its raw source token (e.g. `"-1.5e-3"`).
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key. The parser rejects duplicate keys, so
    /// within a parsed document the match is unique.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The raw number token parsed as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The raw number token parsed as `f64` — exact for values written
    /// with shortest-roundtrip formatting.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Where and why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (one value plus trailing whitespace).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Parse a complete JSON document from raw bytes, as read off a socket
/// frame or a journal file. Non-UTF-8 input is a typed [`ParseError`]
/// at the first invalid byte, never a panic — this is the entry point
/// the routing-controller wire protocol uses on untrusted payloads.
pub fn parse_bytes(bytes: &[u8]) -> Result<Value, ParseError> {
    let text = std::str::from_utf8(bytes).map_err(|e| ParseError {
        offset: e.valid_up_to(),
        message: "invalid utf-8 in document",
    })?;
    parse(text)
}

/// Nesting depth bound — the journal is ~4 levels deep; anything past
/// this is garbage and would otherwise risk recursion exhaustion.
const MAX_DEPTH: u32 = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| k == &key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':', "expected ':' after member key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, non-quote) run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice boundaries sit on ASCII bytes, so this is valid
            // UTF-8 as long as the input was.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xE000).contains(&cp) {
                                // Surrogate pair: the writer never emits
                                // them, but accept well-formed pairs.
                                if cp >= 0xDC00 {
                                    return Err(self.err("unpaired low surrogate"));
                                }
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected \\u for low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.bytes[digits_from] == b'0' && self.pos - digits_from > 1 {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(Value::Num(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json_string;

    #[test]
    fn parses_the_document_shapes_we_write() {
        let v = parse(
            r#"{
  "version": 1,
  "quick": true,
  "cells": [
    {"id": "sweep-r0-s1", "seeds": [{"seed": 0, "thru": "0.3437152777777778"}]},
    {"id": "scripted", "seeds": []}
  ],
  "aux": null
}"#,
        )
        .expect("valid json");
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("quick").and_then(Value::as_bool), Some(true));
        let cells = v.get("cells").and_then(Value::as_arr).expect("array");
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0].get("id").and_then(Value::as_str),
            Some("sweep-r0-s1")
        );
        assert_eq!(v.get("aux"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn numbers_keep_raw_text_and_roundtrip_f64_exactly() {
        for x in [
            0.3437152777777778_f64,
            -1.5e-3,
            5e-5,
            f64::MIN_POSITIVE,
            1234567890.123,
        ] {
            let text = format!("{{\"x\": {x}}}");
            let v = parse(&text).expect("valid");
            let back = v.get("x").and_then(Value::as_f64).expect("number");
            assert_eq!(back.to_bits(), x.to_bits(), "lost bits for {x}");
        }
        let v = parse("[1e3, -0.5E+2, 7]").expect("valid");
        assert_eq!(
            v.as_arr().map(|a| a.len()),
            Some(3),
            "exponent forms accepted"
        );
    }

    #[test]
    fn strings_roundtrip_through_writer_escapes() {
        let nasty = "a\"b\\c\nd\re\tf\u{0001}g — ünïcode";
        let doc = format!("{{\"s\": {}}}", json_string(nasty));
        let v = parse(&doc).expect("valid");
        assert_eq!(v.get("s").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).expect("valid");
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "[1] trailing",
            "\"\\ud800\"",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        let e = parse("[1, @]").expect_err("must fail");
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn duplicate_object_keys_are_rejected() {
        let e = parse(r#"{"a": 1, "b": 2, "a": 3}"#).expect_err("duplicate key");
        assert_eq!(e.message, "duplicate object key");
        // Nested objects get their own key namespace.
        parse(r#"{"a": {"a": 1}, "b": {"a": 2}}"#).expect("distinct scopes are fine");
    }

    #[test]
    fn parse_bytes_rejects_non_utf8_with_the_offset() {
        let mut doc = br#"{"s": ""#.to_vec();
        doc.push(0xFF);
        doc.extend_from_slice(b"\"}");
        let e = parse_bytes(&doc).expect_err("invalid utf-8");
        assert_eq!(e.message, "invalid utf-8 in document");
        assert_eq!(e.offset, 7);
        assert_eq!(
            parse_bytes(br#"{"ok": true}"#).expect("valid").get("ok"),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn depth_bomb_nesting_is_a_typed_error() {
        let deep = "[".repeat(1000);
        let e = parse(&deep).expect_err("depth bomb");
        assert_eq!(e.message, "nesting too deep");
        let mixed = "{\"k\": ".repeat(500) + "1" + &"}".repeat(500);
        assert!(parse(&mixed).is_err());
    }
}
