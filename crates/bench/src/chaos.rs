//! E13 — chaos harness: service degradation under dynamic fault churn.
//!
//! The experiment bodies live here in the library (rather than in the
//! `chaos` binary) so the golden-equivalence test can run the exact
//! harness in-process and byte-compare its serialized document against
//! the committed `results/chaos_quick.json`.
//!
//! Two experiments on the runtime-resilience layer:
//!
//! 1. **Degradation sweep** — on the 8-port 3-tree of §5, every directed
//!    link independently fails and repairs as a seeded Poisson renewal
//!    process. For each fault rate × scheme × K the simulator runs with
//!    online reconvergence (lagged routing view over the shared
//!    selection cache) and end-to-end retransmission, with the runtime
//!    invariant monitors armed. Emitted curves: accepted throughput,
//!    p50/p99 message latency, retransmit ratio and time-to-reconverge
//!    versus fault rate.
//! 2. **Scripted fail → recover** — a single up-link of a 2-level XGFT
//!    dies mid-run and is repaired later, under permutation traffic that
//!    concentrates a measurable share of the load on it. Windowed
//!    throughput (averaged over seeds) shows the dip at the failure and
//!    the return to baseline once the routing view reconverges — well
//!    before the physical repair — with the realized time-to-reconverge
//!    reported from the run stats.
//!
//! Every run is checked for exact conservation (injected equals
//! delivered plus duplicates plus dropped plus in-flight; transfers
//! created equals delivered-once plus dropped-with-cause plus
//! in-flight) and for invariant diagnostics; any violation is counted
//! in the output so callers (the binary, CI's golden test) can gate on
//! a seeded chaos smoke run.
//!
//! # Execution vs. assembly
//!
//! The harness is split into **seed-granular runners** (pure functions
//! producing exact, journal-serializable `SweepSeedOutcome` /
//! `ScriptedSeedOutcome` values) and a deterministic **assembly** pass
//! that aggregates outcomes into records, tables and invariant checks.
//! [`run`] executes every seed inline and assembles; the resumable
//! [`SweepOrchestrator`](crate::orchestrator::SweepOrchestrator) runs
//! the same seeds under checkpoint/retry supervision, journals the
//! outcomes, and feeds the *same* assembly — which is what makes a
//! killed-and-resumed sweep byte-identical to an uninterrupted one.

use crate::{failure_to_json, Failure, Record};
use lmpr_core::{Router, RouterKind};
use lmpr_flitsim::{
    FaultPolicy, FlitSim, ResilienceConfig, RetxConfig, SimConfig, SimError, SimStats, TrafficMode,
};
use lmpr_verify::{Diagnostic, Severity};
use xgft::{FaultChange, FaultEvent, FaultSchedule, Topology, XgftSpec};

/// Mean repair time of the Poisson churn process, cycles.
const MEAN_REPAIR: f64 = 1_500.0;

/// Detection + reconvergence lag of the sweep runs.
const SWEEP_RESILIENCE: ResilienceConfig = ResilienceConfig {
    detect_cycles: 50,
    reconverge_cycles: 150,
    retx: Some(RetxConfig {
        timeout: 4_000,
        max_retries: 5,
    }),
};

/// Everything one full harness invocation produced.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Successful-run records (`chaos-throughput`, `chaos-delay`,
    /// `chaos-reconverge`, `chaos-scripted`, `chaos-scripted-summary`).
    pub records: Vec<Record>,
    /// Structured failures of runs that returned a typed error.
    pub failures: Vec<Failure>,
    /// Invariant violations detected across all runs (conservation,
    /// monitor diagnostics, shape checks).
    pub violations: u32,
}

// ---------------------------------------------------------------------
// Plans: the full experiment grids, derived from the budget flag alone
// so the inline harness and the orchestrator always agree on the cells.
// ---------------------------------------------------------------------

/// The degradation-sweep grid: fault rate × scheme × seed.
pub(crate) struct SweepPlan {
    pub(crate) topo: Topology,
    pub(crate) label: String,
    pub(crate) cfg: SimConfig,
    pub(crate) rates: Vec<f64>,
    pub(crate) schemes: Vec<(RouterKind, u64)>,
    pub(crate) seeds: u64,
}

impl SweepPlan {
    pub(crate) fn new(quick: bool) -> Self {
        let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
        let label = topo.spec().to_string();
        let cfg = SimConfig {
            warmup_cycles: 2_000,
            measure_cycles: if quick { 6_000 } else { 20_000 },
            offered_load: 0.4,
            ..SimConfig::default()
        };
        let rates: Vec<f64> = if quick {
            vec![0.0, 5e-5, 1e-4]
        } else {
            vec![0.0, 1e-5, 5e-5, 1e-4]
        };
        let schemes: Vec<(RouterKind, u64)> = if quick {
            vec![
                (RouterKind::DModK, 1),
                (RouterKind::ShiftOne(4), 4),
                (RouterKind::Disjoint(4), 4),
            ]
        } else {
            vec![
                (RouterKind::DModK, 1),
                (RouterKind::ShiftOne(4), 4),
                (RouterKind::Disjoint(4), 4),
                (RouterKind::ShiftOne(8), 8),
                (RouterKind::Disjoint(8), 8),
            ]
        };
        let seeds: u64 = if quick { 2 } else { 4 };
        SweepPlan {
            topo,
            label,
            cfg,
            rates,
            schemes,
            seeds,
        }
    }

    /// Build the simulator of one (rate, scheme, seed) run.
    pub(crate) fn build_sim(
        &self,
        rate: f64,
        router: RouterKind,
        seed: u64,
    ) -> Result<FlitSim<RouterKind>, SimError> {
        let schedule = FaultSchedule::poisson(
            &self.topo,
            rate,
            MEAN_REPAIR,
            self.cfg.horizon(),
            100 + seed,
        );
        FlitSim::with_schedule(
            &self.topo,
            router,
            self.cfg.with_seed(self.cfg.seed ^ seed),
            TrafficMode::Uniform,
            schedule,
            FaultPolicy::Drop,
            SWEEP_RESILIENCE,
        )
    }
}

/// The scripted fail → recover experiment plan.
pub(crate) struct ScriptedPlan {
    pub(crate) topo: Topology,
    pub(crate) label: String,
    pub(crate) fail_at: u64,
    pub(crate) recover_at: u64,
    pub(crate) horizon: u64,
    pub(crate) res: ResilienceConfig,
    pub(crate) window: u64,
    pub(crate) seeds: u64,
    pub(crate) cfg: SimConfig,
    perm: Vec<u32>,
    link: xgft::DirectedLinkId,
}

impl ScriptedPlan {
    pub(crate) fn new(quick: bool) -> Self {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).expect("valid"));
        let label = topo.spec().to_string();
        let link = topo.up_link(2, 0, 0);
        let (fail_at, recover_at, horizon) = (6_000u64, 12_000u64, 16_000u64);
        let res = ResilienceConfig {
            detect_cycles: 1_500,
            reconverge_cycles: 2_500,
            retx: None,
        };
        let seeds: u64 = if quick { 3 } else { 5 };
        // Shift-by-4 permutation: every flow is inter-group and d-mod-k
        // pins flow 0→4 entirely onto the scripted link, so the dip is a
        // fixed, visible share (1/16) of total throughput.
        let perm: Vec<u32> = (0..topo.num_pns())
            .map(|i| (i + 4) % topo.num_pns())
            .collect();
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: horizon,
            offered_load: 0.6,
            packets_per_message: 1,
            ..SimConfig::default()
        };
        ScriptedPlan {
            topo,
            label,
            fail_at,
            recover_at,
            horizon,
            res,
            window: 1_000,
            seeds,
            cfg,
            perm,
            link,
        }
    }

    pub(crate) fn n_windows(&self) -> usize {
        (self.horizon / self.window) as usize
    }

    /// Build the simulator of one scripted seed.
    pub(crate) fn build_sim(&self, seed: u64) -> Result<FlitSim<RouterKind>, SimError> {
        let schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: self.fail_at,
                change: FaultChange::LinkDown(self.link),
            },
            FaultEvent {
                at: self.recover_at,
                change: FaultChange::LinkUp(self.link),
            },
        ]);
        FlitSim::with_schedule(
            &self.topo,
            RouterKind::DModK,
            self.cfg.with_seed(self.cfg.seed ^ (7 * seed)),
            TrafficMode::Permutation(self.perm.clone()),
            schedule,
            FaultPolicy::Drop,
            self.res,
        )
    }

    /// The structured failure of a scripted seed that could not build.
    pub(crate) fn failure(&self, seed: u64, error: SimError) -> Failure {
        Failure {
            experiment: "chaos-scripted".into(),
            topology: self.label.clone(),
            scheme: "d-mod-k".into(),
            k: 1,
            x: self.fail_at as f64,
            seed,
            error,
        }
    }
}

// ---------------------------------------------------------------------
// Seed-granular outcomes: the exact values assembly aggregates. Every
// field round-trips through the journal bit-exactly (f64s via shortest
// decimal, counters as integers).
// ---------------------------------------------------------------------

/// One successful monitored sweep run, reduced to the metrics assembly
/// aggregates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SweepSeedOutcome {
    pub(crate) thru: f64,
    pub(crate) p50: f64,
    pub(crate) p99: f64,
    pub(crate) retx: f64,
    pub(crate) reconv: f64,
    pub(crate) max_reconv: u64,
    /// Error-severity monitor diagnostics, rendered.
    pub(crate) errors: Vec<String>,
}

/// One successful scripted run: exact per-window delivery deltas plus
/// the realized reconvergence lag.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ScriptedSeedOutcome {
    /// Flits delivered within each window (exact integers — the float
    /// window-throughput aggregation happens once, at assembly).
    pub(crate) deliveries: Vec<u64>,
    pub(crate) mean_reconverge: f64,
    pub(crate) errors: Vec<String>,
}

/// Outcome of one seed: success, or a failure carried as the
/// pre-rendered document block (plus a display string for logs), so a
/// journal resume needs no typed-error parsing.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SeedOutcome<T> {
    Ok(T),
    Failed {
        /// The exact `failures[]` JSON object block of the document.
        json: String,
        /// Human-readable error for progress output.
        display: String,
    },
}

/// Every seed outcome of one full harness invocation, in canonical
/// (rate-major, then scheme, then seed) order.
pub(crate) struct ChaosOutcomes {
    /// Indexed `[rate][scheme] -> per-seed outcomes`.
    pub(crate) sweep: Vec<Vec<Vec<SeedOutcome<SweepSeedOutcome>>>>,
    pub(crate) scripted: Vec<SeedOutcome<ScriptedSeedOutcome>>,
}

/// Reduce a finished sweep simulation to its seed outcome: audit the
/// conservation ledger, keep error-severity diagnostics, extract the
/// aggregated metrics.
pub(crate) fn finish_sweep_seed(
    sim: &FlitSim<RouterKind>,
    stats: SimStats,
    mut diags: Vec<Diagnostic>,
) -> SweepSeedOutcome {
    let ledger = sim.conservation_ledger();
    if !ledger.flit_balance_holds() || !ledger.transfer_balance_holds() {
        // check() renders the precise imbalance as RT-CONSERVE errors.
        ledger.check(&mut diags);
    }
    let errors = diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    SweepSeedOutcome {
        thru: stats.accepted_throughput(),
        p50: stats.delay_p50,
        p99: stats.delay_p99,
        retx: stats.retransmit_ratio(),
        reconv: stats.mean_reconverge_cycles,
        max_reconv: stats.max_reconverge_cycles,
        errors,
    }
}

/// Run one sweep seed start to finish (the inline, non-resumable path).
pub(crate) fn sweep_seed(
    plan: &SweepPlan,
    rate: f64,
    router: RouterKind,
    seed: u64,
) -> Result<SweepSeedOutcome, SimError> {
    let mut sim = plan.build_sim(rate, router, seed)?;
    let (stats, diags) = sim.run_monitored(1_000)?;
    Ok(finish_sweep_seed(&sim, stats, diags))
}

/// Reduce a scripted simulation that has been driven to the horizon
/// (with `deliveries` collected at each window boundary) to its outcome.
pub(crate) fn finish_scripted_seed(
    sim: &mut FlitSim<RouterKind>,
    deliveries: Vec<u64>,
) -> ScriptedSeedOutcome {
    let stats = sim.stats();
    let errors = sim
        .check_invariants()
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    ScriptedSeedOutcome {
        deliveries,
        mean_reconverge: stats.mean_reconverge_cycles,
        errors,
    }
}

/// Run one scripted seed start to finish (the inline path).
pub(crate) fn scripted_seed(
    plan: &ScriptedPlan,
    seed: u64,
) -> Result<ScriptedSeedOutcome, SimError> {
    let mut sim = plan.build_sim(seed)?;
    let mut prev_delivered = 0u64;
    let mut deliveries = Vec::with_capacity(plan.n_windows());
    for w in 0..plan.n_windows() as u64 {
        while sim.now() < (w + 1) * plan.window {
            sim.step();
        }
        let (_, delivered) = sim.lifetime_counters();
        deliveries.push(delivered - prev_delivered);
        prev_delivered = delivered;
    }
    Ok(finish_scripted_seed(&mut sim, deliveries))
}

// ---------------------------------------------------------------------
// Assembly: outcomes -> records, tables, invariant checks. Pure and
// deterministic, so inline and resumed invocations serialize the same
// document.
// ---------------------------------------------------------------------

/// Records, pre-rendered failure blocks and the violation count of one
/// assembled harness invocation.
pub(crate) struct Assembled {
    pub(crate) records: Vec<Record>,
    pub(crate) failure_objects: Vec<String>,
    pub(crate) violations: u32,
}

pub(crate) fn assemble(
    quick: bool,
    plan: &SweepPlan,
    splan: &ScriptedPlan,
    outcomes: &ChaosOutcomes,
) -> Assembled {
    let mut out = Assembled {
        records: Vec::new(),
        failure_objects: Vec::new(),
        violations: 0,
    };
    assemble_sweep(quick, plan, &outcomes.sweep, &mut out);
    assemble_scripted(splan, &outcomes.scripted, &mut out);
    out
}

fn assemble_sweep(
    quick: bool,
    plan: &SweepPlan,
    sweep: &[Vec<Vec<SeedOutcome<SweepSeedOutcome>>>],
    out: &mut Assembled,
) {
    let label = &plan.label;
    println!("E13 — chaos degradation sweep");
    println!(
        "{label}, uniform traffic at load {:.1}, Poisson link churn (mean repair {MEAN_REPAIR} \
         cycles), drop policy, retransmission on, view lag {} cycles\n",
        plan.cfg.offered_load,
        SWEEP_RESILIENCE.lag()
    );
    println!(
        "{:>10} {:>12} {:>3} {:>10} {:>8} {:>8} {:>9} {:>10}",
        "fail rate", "scheme", "K", "thruput", "p50", "p99", "retx", "reconv"
    );

    // (scheme name, k, rate) -> seed-mean throughput, for the
    // degradation-ordering check after the table.
    let mut thru_by_cell: Vec<(String, u64, f64, f64)> = Vec::new();
    for (ri, &rate) in plan.rates.iter().enumerate() {
        for (si, &(router, k)) in plan.schemes.iter().enumerate() {
            let cell = &sweep[ri][si];
            let mut runs: Vec<&SweepSeedOutcome> = Vec::new();
            for (seed, so) in cell.iter().enumerate() {
                match so {
                    SeedOutcome::Ok(o) => {
                        for msg in &o.errors {
                            eprintln!("  INVARIANT {} {}: {}", router.name(), rate, msg);
                            out.violations += 1;
                        }
                        runs.push(o);
                    }
                    SeedOutcome::Failed { json, display } => {
                        eprintln!(
                            "  FAILED {} rate {rate} seed {seed}: {display}",
                            router.name()
                        );
                        out.failure_objects.push(json.clone());
                    }
                }
            }
            if runs.is_empty() {
                continue;
            }
            let n = runs.len() as f64;
            let thru = runs.iter().map(|o| o.thru).sum::<f64>() / n;
            let p50 = runs.iter().map(|o| o.p50).sum::<f64>() / n;
            let p99 = runs.iter().map(|o| o.p99).sum::<f64>() / n;
            let retx = runs.iter().map(|o| o.retx).sum::<f64>() / n;
            let reconv = runs.iter().map(|o| o.reconv).sum::<f64>() / n;
            let max_reconv = runs.iter().map(|o| o.max_reconv).max().unwrap_or(0);
            println!(
                "{:>10.0e} {:>12} {:>3} {:>10.4} {:>8.0} {:>8.0} {:>9.4} {:>10.0}",
                rate,
                router.name(),
                k,
                thru,
                p50,
                p99,
                retx,
                reconv
            );
            let mk = |experiment: &str, y: f64, aux: f64| Record {
                experiment: experiment.into(),
                topology: label.clone(),
                scheme: router.name(),
                k,
                x: rate,
                y,
                aux: Some(aux),
            };
            out.records.push(mk("chaos-throughput", thru, retx));
            out.records.push(mk("chaos-delay", p50, p99));
            out.records
                .push(mk("chaos-reconverge", reconv, max_reconv as f64));
            thru_by_cell.push((router.name(), k, rate, thru));
        }
        println!();
    }

    // Degradation ordering: under link churn the disjoint selection
    // must hold up at least as well as the shift-1 window at the same
    // budget (a failed link kills at most one link-disjoint path but
    // can take out a whole shift-1 window through a shared first hop).
    // Compared on throughput averaged over the nonzero fault rates —
    // single rate points sit within seed noise of each other. The check
    // gates the exit code only in full mode; the quick smoke run keeps
    // it informational (its reduced seed/window budget leaves the two
    // schemes within noise) and gates on invariants alone.
    let faulty_mean = |scheme: &str| {
        let cells: Vec<f64> = thru_by_cell
            .iter()
            .filter(|(s, _, rate, _)| s == scheme && *rate > 0.0)
            .map(|&(_, _, _, t)| t)
            .collect();
        (!cells.is_empty()).then(|| cells.iter().sum::<f64>() / cells.len() as f64)
    };
    for &(_, k) in plan
        .schemes
        .iter()
        .filter(|(r, _)| matches!(r, RouterKind::Disjoint(_)))
    {
        let (dis, shf) = (format!("disjoint({k})"), format!("shift-1({k})"));
        let (Some(d), Some(s)) = (faulty_mean(&dis), faulty_mean(&shf)) else {
            continue;
        };
        let ok = d >= s;
        println!(
            "degradation check K={k}: mean faulty throughput {dis} {d:.4} {} {shf} {s:.4}{}",
            if ok { ">=" } else { "<" },
            if ok || quick { "" } else { "  <- VIOLATION" }
        );
        if !ok && !quick {
            out.violations += 1;
        }
    }
    println!();
}

fn assemble_scripted(
    plan: &ScriptedPlan,
    scripted: &[SeedOutcome<ScriptedSeedOutcome>],
    out: &mut Assembled,
) {
    let label = &plan.label;
    let (fail_at, recover_at) = (plan.fail_at, plan.recover_at);
    let window = plan.window;

    println!("E13 — scripted fail → recover on a single up-link");
    println!(
        "{label}, shift-4 permutation, d-mod-k; link down at {fail_at}, repaired at \
         {recover_at}; view lag {} cycles, drop policy\n",
        plan.res.lag()
    );

    let n_windows = plan.n_windows();
    let mut window_thru = vec![0.0f64; n_windows];
    let mut reconv_mean = 0.0f64;
    for (seed, so) in scripted.iter().enumerate() {
        match so {
            SeedOutcome::Ok(o) => {
                for (slot, &delta) in window_thru.iter_mut().zip(o.deliveries.iter()) {
                    *slot += delta as f64
                        / (window as f64 * plan.topo.num_pns() as f64 * plan.seeds as f64);
                }
                reconv_mean += o.mean_reconverge / plan.seeds as f64;
                for msg in &o.errors {
                    eprintln!("  INVARIANT scripted seed {seed}: {msg}");
                    out.violations += 1;
                }
            }
            SeedOutcome::Failed { json, display } => {
                eprintln!("  FAILED scripted seed {seed}: {display}");
                out.failure_objects.push(json.clone());
            }
        }
    }

    println!("{:>8} {:>12}", "cycle", "throughput");
    for (w, &t) in window_thru.iter().enumerate() {
        let end = (w as u64 + 1) * window;
        let note = if end == fail_at + window {
            "  <- link down"
        } else if end == recover_at + window {
            "  <- link repaired"
        } else {
            ""
        };
        println!("{:>8} {:>12.4}{note}", end, t);
        out.records.push(Record {
            experiment: "chaos-scripted".into(),
            topology: label.clone(),
            scheme: "d-mod-k".into(),
            k: 1,
            x: end as f64,
            y: t,
            aux: None,
        });
    }

    // Dip-and-recovery analysis over the averaged windows.
    let avg = |lo: u64, hi: u64| {
        let (mut sum, mut n) = (0.0, 0u32);
        for (w, &t) in window_thru.iter().enumerate() {
            let (s, e) = (w as u64 * window, (w as u64 + 1) * window);
            if s >= lo && e <= hi {
                sum += t;
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };
    let baseline = avg(2_000, fail_at);
    let outage = avg(fail_at, fail_at + plan.res.lag());
    let reconverged = avg(fail_at + plan.res.lag() + window, recover_at);
    println!(
        "\nbaseline {:.4}, during outage (pre-reconvergence) {:.4}, after reconvergence {:.4}",
        baseline, outage, reconverged
    );
    println!("mean time-to-reconverge reported by stats: {reconv_mean:.0} cycles");
    let dipped = outage < baseline - 0.02;
    let recovered = (reconverged - baseline).abs() < 0.02;
    println!("dip visible: {dipped}; recovered within the view lag: {recovered}\n");
    if !dipped || !recovered {
        eprintln!("chaos: scripted outage did not show the expected dip-and-recover shape");
        out.violations += 1;
    }
    out.records.push(Record {
        experiment: "chaos-scripted-summary".into(),
        topology: label.clone(),
        scheme: "d-mod-k".into(),
        k: 1,
        x: reconv_mean,
        y: baseline - outage,
        aux: Some(reconverged - baseline),
    });
}

// ---------------------------------------------------------------------
// Inline entry point
// ---------------------------------------------------------------------

/// Run both chaos experiments at the quick or full statistical budget.
pub fn run(quick: bool) -> ChaosRun {
    let plan = SweepPlan::new(quick);
    let splan = ScriptedPlan::new(quick);
    let mut outcomes = ChaosOutcomes {
        sweep: Vec::new(),
        scripted: Vec::new(),
    };
    let mut typed_failures: Vec<Failure> = Vec::new();

    for &rate in &plan.rates {
        let mut row = Vec::new();
        for &(router, k) in &plan.schemes {
            let mut cell = Vec::new();
            for seed in 0..plan.seeds {
                match sweep_seed(&plan, rate, router, seed) {
                    Ok(o) => cell.push(SeedOutcome::Ok(o)),
                    Err(e) => {
                        let display = e.to_string();
                        let f = Failure {
                            experiment: "chaos-sweep".into(),
                            topology: plan.label.clone(),
                            scheme: router.name(),
                            k,
                            x: rate,
                            seed,
                            error: e,
                        };
                        cell.push(SeedOutcome::Failed {
                            json: failure_to_json(&f),
                            display,
                        });
                        typed_failures.push(f);
                    }
                }
            }
            row.push(cell);
        }
        outcomes.sweep.push(row);
    }
    for seed in 0..splan.seeds {
        match scripted_seed(&splan, seed) {
            Ok(o) => outcomes.scripted.push(SeedOutcome::Ok(o)),
            Err(e) => {
                let display = e.to_string();
                let f = splan.failure(seed, e);
                outcomes.scripted.push(SeedOutcome::Failed {
                    json: failure_to_json(&f),
                    display,
                });
                typed_failures.push(f);
            }
        }
    }

    let assembled = assemble(quick, &plan, &splan, &outcomes);
    debug_assert_eq!(
        assembled.failure_objects.len(),
        typed_failures.len(),
        "assembly must surface exactly the typed failures"
    );
    ChaosRun {
        records: assembled.records,
        failures: typed_failures,
        violations: assembled.violations,
    }
}
