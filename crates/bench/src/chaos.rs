//! E13 — chaos harness: service degradation under dynamic fault churn.
//!
//! The experiment bodies live here in the library (rather than in the
//! `chaos` binary) so the golden-equivalence test can run the exact
//! harness in-process and byte-compare its serialized document against
//! the committed `results/chaos_quick.json`.
//!
//! Two experiments on the runtime-resilience layer:
//!
//! 1. **Degradation sweep** — on the 8-port 3-tree of §5, every directed
//!    link independently fails and repairs as a seeded Poisson renewal
//!    process. For each fault rate × scheme × K the simulator runs with
//!    online reconvergence (lagged routing view over the shared
//!    selection cache) and end-to-end retransmission, with the runtime
//!    invariant monitors armed. Emitted curves: accepted throughput,
//!    p50/p99 message latency, retransmit ratio and time-to-reconverge
//!    versus fault rate.
//! 2. **Scripted fail → recover** — a single up-link of a 2-level XGFT
//!    dies mid-run and is repaired later, under permutation traffic that
//!    concentrates a measurable share of the load on it. Windowed
//!    throughput (averaged over seeds) shows the dip at the failure and
//!    the return to baseline once the routing view reconverges — well
//!    before the physical repair — with the realized time-to-reconverge
//!    reported from the run stats.
//!
//! Every run is checked for exact conservation (injected equals
//! delivered plus duplicates plus dropped plus in-flight; transfers
//! created equals delivered-once plus dropped-with-cause plus
//! in-flight) and for invariant diagnostics; any violation is counted
//! in the output so callers (the binary, CI's golden test) can gate on
//! a seeded chaos smoke run.

use crate::{Failure, Record};
use lmpr_core::{Router, RouterKind};
use lmpr_flitsim::{
    FaultPolicy, FlitSim, ResilienceConfig, RetxConfig, SimConfig, SimStats, TrafficMode,
};
use lmpr_verify::{Diagnostic, Severity};
use xgft::{FaultChange, FaultEvent, FaultSchedule, Topology, XgftSpec};

/// Mean repair time of the Poisson churn process, cycles.
const MEAN_REPAIR: f64 = 1_500.0;

/// Detection + reconvergence lag of the sweep runs.
const SWEEP_RESILIENCE: ResilienceConfig = ResilienceConfig {
    detect_cycles: 50,
    reconverge_cycles: 150,
    retx: Some(RetxConfig {
        timeout: 4_000,
        max_retries: 5,
    }),
};

/// Everything one full harness invocation produced.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Successful-run records (`chaos-throughput`, `chaos-delay`,
    /// `chaos-reconverge`, `chaos-scripted`, `chaos-scripted-summary`).
    pub records: Vec<Record>,
    /// Structured failures of runs that returned a typed error.
    pub failures: Vec<Failure>,
    /// Invariant violations detected across all runs (conservation,
    /// monitor diagnostics, shape checks).
    pub violations: u32,
}

/// Run both chaos experiments at the quick or full statistical budget.
pub fn run(quick: bool) -> ChaosRun {
    let mut out = ChaosRun {
        records: Vec::new(),
        failures: Vec::new(),
        violations: 0,
    };
    sweep(quick, &mut out);
    scripted(quick, &mut out);
    out
}

/// Outcome of one monitored chaos run.
struct RunOutcome {
    stats: SimStats,
    /// Error-severity diagnostics from the monitors (warnings are
    /// reported to stdout but do not gate).
    errors: Vec<Diagnostic>,
}

/// Run one schedule-driven simulation with monitors armed and the
/// conservation ledger audited at the end.
fn run_one<R: Router>(
    topo: &Topology,
    router: R,
    cfg: SimConfig,
    traffic: TrafficMode,
    schedule: FaultSchedule,
    res: ResilienceConfig,
) -> Result<RunOutcome, lmpr_flitsim::SimError> {
    let mut sim =
        FlitSim::with_schedule(topo, router, cfg, traffic, schedule, FaultPolicy::Drop, res)?;
    let (stats, mut diags) = sim.run_monitored(1_000)?;
    let ledger = sim.conservation_ledger();
    if !ledger.flit_balance_holds() || !ledger.transfer_balance_holds() {
        // check() renders the precise imbalance as RT-CONSERVE errors.
        ledger.check(&mut diags);
    }
    let errors = diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    Ok(RunOutcome { stats, errors })
}

/// The degradation sweep: fault rate × scheme × K under Poisson churn.
fn sweep(quick: bool, out: &mut ChaosRun) {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    let label = topo.spec().to_string();
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: if quick { 6_000 } else { 20_000 },
        offered_load: 0.4,
        ..SimConfig::default()
    };
    let rates: &[f64] = if quick {
        &[0.0, 5e-5, 1e-4]
    } else {
        &[0.0, 1e-5, 5e-5, 1e-4]
    };
    let schemes: Vec<(RouterKind, u64)> = if quick {
        vec![
            (RouterKind::DModK, 1),
            (RouterKind::ShiftOne(4), 4),
            (RouterKind::Disjoint(4), 4),
        ]
    } else {
        vec![
            (RouterKind::DModK, 1),
            (RouterKind::ShiftOne(4), 4),
            (RouterKind::Disjoint(4), 4),
            (RouterKind::ShiftOne(8), 8),
            (RouterKind::Disjoint(8), 8),
        ]
    };
    let seeds: u64 = if quick { 2 } else { 4 };

    println!("E13 — chaos degradation sweep");
    println!(
        "{label}, uniform traffic at load {:.1}, Poisson link churn (mean repair {MEAN_REPAIR} \
         cycles), drop policy, retransmission on, view lag {} cycles\n",
        cfg.offered_load,
        SWEEP_RESILIENCE.lag()
    );
    println!(
        "{:>10} {:>12} {:>3} {:>10} {:>8} {:>8} {:>9} {:>10}",
        "fail rate", "scheme", "K", "thruput", "p50", "p99", "retx", "reconv"
    );

    // (scheme name, k, rate) -> seed-mean throughput, for the
    // degradation-ordering check after the table.
    let mut thru_by_cell: Vec<(String, u64, f64, f64)> = Vec::new();
    for &rate in rates {
        for &(router, k) in &schemes {
            let mut runs = Vec::new();
            for seed in 0..seeds {
                let schedule =
                    FaultSchedule::poisson(&topo, rate, MEAN_REPAIR, cfg.horizon(), 100 + seed);
                match run_one(
                    &topo,
                    router,
                    cfg.with_seed(cfg.seed ^ seed),
                    TrafficMode::Uniform,
                    schedule,
                    SWEEP_RESILIENCE,
                ) {
                    Ok(o) => {
                        for d in &o.errors {
                            eprintln!("  INVARIANT {} {}: {}", router.name(), rate, d);
                            out.violations += 1;
                        }
                        runs.push(o.stats);
                    }
                    Err(e) => {
                        eprintln!("  FAILED {} rate {rate} seed {seed}: {e}", router.name());
                        out.failures.push(Failure {
                            experiment: "chaos-sweep".into(),
                            topology: label.clone(),
                            scheme: router.name(),
                            k,
                            x: rate,
                            seed,
                            error: e,
                        });
                    }
                }
            }
            if runs.is_empty() {
                continue;
            }
            let n = runs.len() as f64;
            let thru = runs.iter().map(SimStats::accepted_throughput).sum::<f64>() / n;
            let p50 = runs.iter().map(|s| s.delay_p50).sum::<f64>() / n;
            let p99 = runs.iter().map(|s| s.delay_p99).sum::<f64>() / n;
            let retx = runs.iter().map(SimStats::retransmit_ratio).sum::<f64>() / n;
            let reconv = runs.iter().map(|s| s.mean_reconverge_cycles).sum::<f64>() / n;
            let max_reconv = runs
                .iter()
                .map(|s| s.max_reconverge_cycles)
                .max()
                .unwrap_or(0);
            println!(
                "{:>10.0e} {:>12} {:>3} {:>10.4} {:>8.0} {:>8.0} {:>9.4} {:>10.0}",
                rate,
                router.name(),
                k,
                thru,
                p50,
                p99,
                retx,
                reconv
            );
            let mk = |experiment: &str, y: f64, aux: f64| Record {
                experiment: experiment.into(),
                topology: label.clone(),
                scheme: router.name(),
                k,
                x: rate,
                y,
                aux: Some(aux),
            };
            out.records.push(mk("chaos-throughput", thru, retx));
            out.records.push(mk("chaos-delay", p50, p99));
            out.records
                .push(mk("chaos-reconverge", reconv, max_reconv as f64));
            thru_by_cell.push((router.name(), k, rate, thru));
        }
        println!();
    }

    // Degradation ordering: under link churn the disjoint selection
    // must hold up at least as well as the shift-1 window at the same
    // budget (a failed link kills at most one link-disjoint path but
    // can take out a whole shift-1 window through a shared first hop).
    // Compared on throughput averaged over the nonzero fault rates —
    // single rate points sit within seed noise of each other. The check
    // gates the exit code only in full mode; the quick smoke run keeps
    // it informational (its reduced seed/window budget leaves the two
    // schemes within noise) and gates on invariants alone.
    let faulty_mean = |scheme: &str| {
        let cells: Vec<f64> = thru_by_cell
            .iter()
            .filter(|(s, _, rate, _)| s == scheme && *rate > 0.0)
            .map(|&(_, _, _, t)| t)
            .collect();
        (!cells.is_empty()).then(|| cells.iter().sum::<f64>() / cells.len() as f64)
    };
    for &(_, k) in schemes
        .iter()
        .filter(|(r, _)| matches!(r, RouterKind::Disjoint(_)))
    {
        let (dis, shf) = (format!("disjoint({k})"), format!("shift-1({k})"));
        let (Some(d), Some(s)) = (faulty_mean(&dis), faulty_mean(&shf)) else {
            continue;
        };
        let ok = d >= s;
        println!(
            "degradation check K={k}: mean faulty throughput {dis} {d:.4} {} {shf} {s:.4}{}",
            if ok { ">=" } else { "<" },
            if ok || quick { "" } else { "  <- VIOLATION" }
        );
        if !ok && !quick {
            out.violations += 1;
        }
    }
    println!();
}

/// The scripted fail → recover experiment: one up-link of a 2-level XGFT
/// dies and is repaired; windowed throughput shows dip and recovery.
fn scripted(quick: bool, out: &mut ChaosRun) {
    let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).expect("valid"));
    let label = topo.spec().to_string();
    let link = topo.up_link(2, 0, 0);
    let (fail_at, recover_at, horizon) = (6_000u64, 12_000u64, 16_000u64);
    let res = ResilienceConfig {
        detect_cycles: 1_500,
        reconverge_cycles: 2_500,
        retx: None,
    };
    let window = 1_000u64;
    let seeds: u64 = if quick { 3 } else { 5 };
    // Shift-by-4 permutation: every flow is inter-group and d-mod-k pins
    // flow 0→4 entirely onto the scripted link, so the dip is a fixed,
    // visible share (1/16) of total throughput.
    let perm: Vec<u32> = (0..topo.num_pns())
        .map(|i| (i + 4) % topo.num_pns())
        .collect();
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: horizon,
        offered_load: 0.6,
        packets_per_message: 1,
        ..SimConfig::default()
    };

    println!("E13 — scripted fail → recover on a single up-link");
    println!(
        "{label}, shift-4 permutation, d-mod-k; link down at {fail_at}, repaired at \
         {recover_at}; view lag {} cycles, drop policy\n",
        res.lag()
    );

    let n_windows = (horizon / window) as usize;
    let mut window_thru = vec![0.0f64; n_windows];
    let mut reconv_mean = 0.0f64;
    for seed in 0..seeds {
        let schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: fail_at,
                change: FaultChange::LinkDown(link),
            },
            FaultEvent {
                at: recover_at,
                change: FaultChange::LinkUp(link),
            },
        ]);
        let sim = FlitSim::with_schedule(
            &topo,
            RouterKind::DModK,
            cfg.with_seed(cfg.seed ^ (7 * seed)),
            TrafficMode::Permutation(perm.clone()),
            schedule,
            FaultPolicy::Drop,
            res,
        );
        let mut sim = match sim {
            Ok(s) => s,
            Err(e) => {
                out.failures.push(Failure {
                    experiment: "chaos-scripted".into(),
                    topology: label.clone(),
                    scheme: "d-mod-k".into(),
                    k: 1,
                    x: fail_at as f64,
                    seed,
                    error: e,
                });
                continue;
            }
        };
        let mut prev_delivered = 0u64;
        for (w, slot) in window_thru.iter_mut().enumerate() {
            while sim.now() < (w as u64 + 1) * window {
                sim.step();
            }
            let (_, delivered) = sim.lifetime_counters();
            *slot += (delivered - prev_delivered) as f64
                / (window as f64 * topo.num_pns() as f64 * seeds as f64);
            prev_delivered = delivered;
        }
        let stats = sim.stats();
        reconv_mean += stats.mean_reconverge_cycles / seeds as f64;
        for d in sim.check_invariants() {
            if d.severity == Severity::Error {
                eprintln!("  INVARIANT scripted seed {seed}: {d}");
                out.violations += 1;
            }
        }
    }

    println!("{:>8} {:>12}", "cycle", "throughput");
    for (w, &t) in window_thru.iter().enumerate() {
        let end = (w as u64 + 1) * window;
        let note = if end == fail_at + window {
            "  <- link down"
        } else if end == recover_at + window {
            "  <- link repaired"
        } else {
            ""
        };
        println!("{:>8} {:>12.4}{note}", end, t);
        out.records.push(Record {
            experiment: "chaos-scripted".into(),
            topology: label.clone(),
            scheme: "d-mod-k".into(),
            k: 1,
            x: end as f64,
            y: t,
            aux: None,
        });
    }

    // Dip-and-recovery analysis over the averaged windows.
    let avg = |lo: u64, hi: u64| {
        let (mut sum, mut n) = (0.0, 0u32);
        for (w, &t) in window_thru.iter().enumerate() {
            let (s, e) = (w as u64 * window, (w as u64 + 1) * window);
            if s >= lo && e <= hi {
                sum += t;
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };
    let baseline = avg(2_000, fail_at);
    let outage = avg(fail_at, fail_at + res.lag());
    let reconverged = avg(fail_at + res.lag() + window, recover_at);
    println!(
        "\nbaseline {:.4}, during outage (pre-reconvergence) {:.4}, after reconvergence {:.4}",
        baseline, outage, reconverged
    );
    println!("mean time-to-reconverge reported by stats: {reconv_mean:.0} cycles");
    let dipped = outage < baseline - 0.02;
    let recovered = (reconverged - baseline).abs() < 0.02;
    println!("dip visible: {dipped}; recovered within the view lag: {recovered}\n");
    if !dipped || !recovered {
        eprintln!("chaos: scripted outage did not show the expected dip-and-recover shape");
        out.violations += 1;
    }
    out.records.push(Record {
        experiment: "chaos-scripted-summary".into(),
        topology: label,
        scheme: "d-mod-k".into(),
        k: 1,
        x: reconv_mean,
        y: baseline - outage,
        aux: Some(reconverged - baseline),
    });
}
