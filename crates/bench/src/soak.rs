//! Ledger and invariant evaluation for the `ctl_soak` chaos harness.
//!
//! The harness (the `ctl_soak` binary in `lmpr-ctld`) runs the routing
//! daemon under a seeded failpoint plan, records everything it observes
//! into a [`SoakLedger`], and asks [`SoakLedger::report`] to evaluate
//! the recovery invariants into an `lmpr-verify` [`Report`] — the same
//! machine-readable certificate shape every other checker in this repo
//! emits. The split keeps the invariant logic daemon-agnostic and unit
//! testable: this module never touches a socket or a thread; it judges
//! a transcript.
//!
//! The invariants, one rule each:
//!
//! * **`CTL-SOAK-EPOCH`** — fault-batch acknowledgements carry strictly
//!   increasing epochs with `epoch == batch_id`: the daemon commits
//!   exactly one epoch per applied batch, monotonically, across every
//!   crash and restart.
//! * **`CTL-SOAK-SERVE`** — no reply ever carried an epoch the daemon
//!   had not committed (readers can never observe an uncertified or
//!   regressed epoch).
//! * **`CTL-SOAK-RECOVER`** — every restart recovered exactly the
//!   newest checkpoint that validates on disk, and never an epoch below
//!   the last acknowledged commit (newest-valid-wins, no silent genesis
//!   bootstrap).
//! * **`CTL-SOAK-BATCH`** — at-least-once accounting closed out exact:
//!   every batch sent was committed exactly once, and the daemon's
//!   final state digest equals an offline replay's (no lost, reordered,
//!   or double-applied batch). In a failover run the "daemon" at the
//!   end is the last promoted standby's lineage, so this rule is also
//!   the proof that the promoted replica's full-feed state equals the
//!   offline reference.
//! * **`CTL-SOAK-FAILOVER`** — every standby promotion caught up to
//!   the entire submitted feed before serving: the promoted epoch
//!   covers every batch sent, never sits below an acknowledged commit,
//!   and the daemon spawned on the promoted state recovered exactly
//!   that epoch. With any promotions at all, the feeder must have
//!   actually failed over at least once per promotion.
//! * **`CTL-SOAK-GEN`** — generation leases form a strict +1 chain
//!   across promotions, every deposed-generation write probe was
//!   durably rejected by the store fence, and the feeder crossed each
//!   fence via a counted `gen-fenced` retry.

use lmpr_verify::{Diagnostic, Report, RuleId, Witness};

/// One rung of the escalating failpoint schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakPhase {
    /// Human-readable phase tag (stderr progress only).
    pub name: &'static str,
    /// Fault batches to drive during this phase.
    pub batches: u64,
    /// Storage-fault probability, permille per I/O op.
    pub storage_permille: u16,
    /// Wire-fault probability, permille per stream op.
    pub wire_permille: u16,
    /// Probability that a faulting storage op escalates to a crash
    /// kind, permille.
    pub crash_permille: u16,
}

/// The default escalation: a calm warm-up, then wire faults, then
/// survivable storage faults, then crash kinds, then everything at
/// once. The harness cycles the final rung until its fault and crash
/// quotas are met.
pub fn escalation() -> Vec<SoakPhase> {
    vec![
        SoakPhase {
            name: "calm",
            batches: 3,
            storage_permille: 0,
            wire_permille: 0,
            crash_permille: 0,
        },
        SoakPhase {
            name: "wire",
            batches: 8,
            storage_permille: 0,
            wire_permille: 140,
            crash_permille: 0,
        },
        SoakPhase {
            name: "storage",
            batches: 8,
            storage_permille: 140,
            wire_permille: 40,
            crash_permille: 0,
        },
        SoakPhase {
            name: "crash",
            batches: 10,
            storage_permille: 220,
            wire_permille: 60,
            crash_permille: 500,
        },
        SoakPhase {
            name: "mayhem",
            batches: 12,
            storage_permille: 300,
            wire_permille: 140,
            crash_permille: 450,
        },
    ]
}

/// Why a daemon incarnation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartCause {
    /// An injected crash kind (fsync-then-crash, torn rename).
    InjectedCrash,
    /// A fatal injected storage fault (ENOSPC, short write, EIO) on
    /// which the daemon correctly fail-stopped.
    FatalFault,
    /// A deliberate, graceful restart at a phase boundary.
    PhaseChange,
}

impl RestartCause {
    /// Stable tag for progress output.
    pub fn tag(self) -> &'static str {
        match self {
            RestartCause::InjectedCrash => "injected-crash",
            RestartCause::FatalFault => "fatal-fault",
            RestartCause::PhaseChange => "phase-change",
        }
    }

    /// Whether the failpoint layer induced this restart.
    pub fn induced(self) -> bool {
        !matches!(self, RestartCause::PhaseChange)
    }
}

/// One daemon restart, with what recovery was entitled to and what it
/// actually produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartRecord {
    /// Incarnation number of the daemon that came *up* (1-based; the
    /// initial boot is incarnation 0 and is not a restart).
    pub incarnation: u64,
    /// Why the previous incarnation ended.
    pub cause: RestartCause,
    /// Highest epoch acknowledged to the feeder before the restart.
    pub last_acked_epoch: u64,
    /// The newest epoch whose checkpoint validated in an independent,
    /// unfaulted scan of the state directory taken before the restart
    /// (`None` when nothing on disk validated).
    pub newest_valid_on_disk: Option<u64>,
    /// The epoch the restarted daemon reported serving.
    pub recovered_epoch: u64,
}

/// One standby promotion, with everything the failover invariants are
/// judged on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromotionRecord {
    /// Promotion number (1-based).
    pub index: u64,
    /// The generation lease before the bump (the dead primary's).
    pub gen_before: u64,
    /// The generation lease the promoted controller now holds.
    pub gen_after: u64,
    /// Highest epoch acknowledged to the feeder before the primary
    /// died.
    pub last_acked_epoch: u64,
    /// The epoch the promoted controller served after catching up on
    /// the feed.
    pub promoted_epoch: u64,
    /// The highest batch id the catch-up replayed through — must equal
    /// the full submitted feed.
    pub resubmitted_through: u64,
    /// The epoch the daemon spawned on the promoted state reported.
    pub recovered_epoch: u64,
    /// Whether the post-promotion probe that committed a checkpoint at
    /// the *deposed* generation was rejected by the store fence.
    pub stale_write_rejected: bool,
    /// The generation lease the surviving feeder carries into the
    /// promoted incarnation (0 if it has never seen a reply).
    pub feeder_lease: u64,
}

/// One fault-batch acknowledgement as the feeder saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// The batch id submitted.
    pub batch_id: u64,
    /// The epoch the acknowledgement carried.
    pub epoch: u64,
    /// False when the daemon deduplicated an at-least-once resend.
    pub applied: bool,
}

/// The harness transcript: everything the invariants are judged on.
/// All fields are driven by the deterministic feeder (or by daemon-side
/// counters that only the feeder's serial request stream advances), so
/// the report rendered from a fixed seed is byte-identical across runs.
#[derive(Debug, Clone, Default)]
pub struct SoakLedger {
    /// Fault batches submitted (including ones retried across crashes).
    pub batches_sent: u64,
    /// Acknowledgements, in feeder order.
    pub acks: Vec<BatchAck>,
    /// Restarts, in order.
    pub restarts: Vec<RestartRecord>,
    /// Epoch-rule violations observed by the concurrent query threads
    /// (an epoch above the submitted watermark, or below one already
    /// served). Zero on a correct daemon.
    pub query_epoch_violations: u64,
    /// Survivable storage faults injected into the daemon.
    pub storage_faults: u64,
    /// Crash-kind storage faults injected into the daemon.
    pub storage_crashes: u64,
    /// Wire faults injected into the feeder's own connections.
    pub feeder_wire_faults: u64,
    /// Standby promotions, in order.
    pub promotions: Vec<PromotionRecord>,
    /// Endpoint failovers the feeder performed (dials that landed on a
    /// different endpoint than the previous connection).
    pub feeder_failovers: u64,
    /// `gen-fenced` rejections the feeder recovered from.
    pub feeder_gen_retries: u64,
    /// The generation lease the feeder held when it was retired.
    pub feeder_final_lease: u64,
    /// The daemon's final reported epoch.
    pub final_epoch: u64,
    /// The daemon's final committed feed batch id.
    pub final_committed_batch_id: u64,
    /// The daemon's final semantic digest (16 hex digits).
    pub final_digest: String,
    /// The offline replay's epoch after ingesting the same batches.
    pub mirror_epoch: u64,
    /// The offline replay's semantic digest.
    pub mirror_digest: String,
}

impl SoakLedger {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total deterministic injected faults (storage + feeder wire).
    pub fn total_faults(&self) -> u64 {
        self.storage_faults + self.storage_crashes + self.feeder_wire_faults
    }

    /// Restarts the failpoint layer induced (crashes and fail-stops).
    pub fn induced_restarts(&self) -> u64 {
        self.restarts.iter().filter(|r| r.cause.induced()).count() as u64
    }

    /// Evaluate the soak invariants into a verify-style certificate.
    pub fn report(&self, topology: &str, scheme: &str) -> Report {
        let mut r = Report::new(topology, scheme);

        // CTL-SOAK-EPOCH: acks strictly increase and each batch commits
        // exactly its own epoch.
        let before = r.findings.len();
        let mut prev = 0u64;
        for a in &self.acks {
            if a.epoch != a.batch_id {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakEpoch,
                    format!(
                        "batch {} acknowledged at epoch {} (want exactly one \
                         committed epoch per batch)",
                        a.batch_id, a.epoch
                    ),
                    Witness::None,
                ));
            }
            if a.epoch <= prev {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakEpoch,
                    format!("ack epoch regressed or stalled: {} after {prev}", a.epoch),
                    Witness::None,
                ));
            }
            prev = a.epoch;
        }
        r.record(RuleId::CtlSoakEpoch, self.acks.len() as u64, before);

        // CTL-SOAK-SERVE: concurrent readers never saw an uncommitted
        // or regressed epoch.
        let before = r.findings.len();
        if self.query_epoch_violations > 0 {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakServe,
                format!(
                    "{} reply(ies) carried an epoch outside the committed set",
                    self.query_epoch_violations
                ),
                Witness::None,
            ));
        }
        r.record(RuleId::CtlSoakServe, self.acks.len() as u64, before);

        // CTL-SOAK-RECOVER: newest-valid-wins, never below an ack.
        let before = r.findings.len();
        for rr in &self.restarts {
            match rr.newest_valid_on_disk {
                None => r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakRecover,
                    format!(
                        "restart {} ({}): no checkpoint on disk validated — \
                         the fault sequence destroyed the durable state",
                        rr.incarnation,
                        rr.cause.tag()
                    ),
                    Witness::None,
                )),
                Some(nv) if rr.recovered_epoch != nv => r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakRecover,
                    format!(
                        "restart {} ({}): recovered epoch {} but the newest \
                         valid checkpoint on disk was {}",
                        rr.incarnation,
                        rr.cause.tag(),
                        rr.recovered_epoch,
                        nv
                    ),
                    Witness::None,
                )),
                Some(_) if rr.recovered_epoch < rr.last_acked_epoch => {
                    r.findings.push(Diagnostic::error(
                        RuleId::CtlSoakRecover,
                        format!(
                            "restart {} ({}): recovered epoch {} below the \
                             acknowledged commit {}",
                            rr.incarnation,
                            rr.cause.tag(),
                            rr.recovered_epoch,
                            rr.last_acked_epoch
                        ),
                        Witness::None,
                    ));
                }
                Some(_) => {}
            }
        }
        r.record(RuleId::CtlSoakRecover, self.restarts.len() as u64, before);

        // CTL-SOAK-BATCH: exact at-least-once accounting.
        let before = r.findings.len();
        if self.final_committed_batch_id != self.batches_sent {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakBatch,
                format!(
                    "sent {} batches but the daemon committed through {}",
                    self.batches_sent, self.final_committed_batch_id
                ),
                Witness::None,
            ));
        }
        if self.final_epoch != self.mirror_epoch {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakBatch,
                format!(
                    "final epoch {} disagrees with the offline replay's {}",
                    self.final_epoch, self.mirror_epoch
                ),
                Witness::None,
            ));
        }
        if self.final_digest != self.mirror_digest {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakBatch,
                format!(
                    "final digest {} disagrees with the offline replay's {} \
                     (a batch was lost or double-applied)",
                    self.final_digest, self.mirror_digest
                ),
                Witness::None,
            ));
        }
        r.record(RuleId::CtlSoakBatch, self.batches_sent, before);

        // CTL-SOAK-FAILOVER: promotion caught up before serving, never
        // below an ack, and the daemon on the promoted state serves
        // exactly the promoted epoch.
        let before = r.findings.len();
        for p in &self.promotions {
            if p.promoted_epoch != p.resubmitted_through {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakFailover,
                    format!(
                        "promotion {}: promoted epoch {} but catch-up replayed \
                         the feed through batch {} (one epoch per batch)",
                        p.index, p.promoted_epoch, p.resubmitted_through
                    ),
                    Witness::None,
                ));
            }
            if p.promoted_epoch < p.last_acked_epoch {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakFailover,
                    format!(
                        "promotion {}: promoted epoch {} regressed below the \
                         acknowledged commit {} — an acked batch was lost",
                        p.index, p.promoted_epoch, p.last_acked_epoch
                    ),
                    Witness::None,
                ));
            }
            if p.recovered_epoch != p.promoted_epoch {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakFailover,
                    format!(
                        "promotion {}: daemon spawned on the promoted state \
                         serves epoch {} instead of the promoted {}",
                        p.index, p.recovered_epoch, p.promoted_epoch
                    ),
                    Witness::None,
                ));
            }
        }
        if !self.promotions.is_empty() && self.feeder_failovers < self.promotions.len() as u64 {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakFailover,
                format!(
                    "{} promotion(s) but the feeder only failed over {} \
                     time(s) — it kept talking to dead or deposed endpoints",
                    self.promotions.len(),
                    self.feeder_failovers
                ),
                Witness::None,
            ));
        }
        r.record(
            RuleId::CtlSoakFailover,
            self.promotions.len() as u64,
            before,
        );

        // CTL-SOAK-GEN: a strict +1 generation chain, durably fenced
        // stale writes, and counted fence crossings at the feeder.
        let before = r.findings.len();
        let mut prev_gen = 1u64; // genesis lease
        for p in &self.promotions {
            if p.gen_before != prev_gen {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakGen,
                    format!(
                        "promotion {}: found generation {} on the standby, \
                         expected the chain to be at {}",
                        p.index, p.gen_before, prev_gen
                    ),
                    Witness::None,
                ));
            }
            if p.gen_after != p.gen_before + 1 {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakGen,
                    format!(
                        "promotion {}: generation jumped {} -> {} (want +1)",
                        p.index, p.gen_before, p.gen_after
                    ),
                    Witness::None,
                ));
            }
            if !p.stale_write_rejected {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakGen,
                    format!(
                        "promotion {}: a write at the deposed generation {} \
                         was NOT rejected by the store fence — split-brain",
                        p.index, p.gen_before
                    ),
                    Witness::None,
                ));
            }
            prev_gen = p.gen_after;
        }
        // A feeder crosses promotion `i`'s fence iff it adopted that
        // incarnation's lease (the lease it carries into the *next*
        // promotion equals `gen_after`) while still holding an older,
        // nonzero one. A feeder that never heard from an incarnation —
        // or that had never seen any reply at all — has nothing to
        // fence, so those promotions are excluded from the floor
        // rather than silently assumed.
        let expected_crossings = self
            .promotions
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                let lease_after = self
                    .promotions
                    .get(i + 1)
                    .map_or(self.feeder_final_lease, |next| next.feeder_lease);
                p.feeder_lease > 0 && p.feeder_lease < p.gen_after && lease_after == p.gen_after
            })
            .count() as u64;
        if self.feeder_gen_retries < expected_crossings {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakGen,
                format!(
                    "{} lease adoption(s) required a fence crossing but the \
                     feeder was only gen-fenced {} time(s) — acks bypassed \
                     the fence",
                    expected_crossings, self.feeder_gen_retries
                ),
                Witness::None,
            ));
        }
        r.record(RuleId::CtlSoakGen, self.promotions.len() as u64, before);

        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_ledger() -> SoakLedger {
        let mut l = SoakLedger::new();
        l.batches_sent = 3;
        l.acks = vec![
            BatchAck {
                batch_id: 1,
                epoch: 1,
                applied: true,
            },
            BatchAck {
                batch_id: 2,
                epoch: 2,
                applied: true,
            },
            // An at-least-once resend the daemon deduplicated.
            BatchAck {
                batch_id: 3,
                epoch: 3,
                applied: false,
            },
        ];
        l.restarts = vec![RestartRecord {
            incarnation: 1,
            cause: RestartCause::InjectedCrash,
            last_acked_epoch: 2,
            newest_valid_on_disk: Some(3),
            recovered_epoch: 3,
        }];
        l.storage_faults = 5;
        l.storage_crashes = 1;
        l.feeder_wire_faults = 2;
        l.final_epoch = 3;
        l.final_committed_batch_id = 3;
        l.final_digest = "00000000deadbeef".to_owned();
        l.mirror_epoch = 3;
        l.mirror_digest = "00000000deadbeef".to_owned();
        l
    }

    /// A clean transcript that also went through two promotions.
    fn clean_failover_ledger() -> SoakLedger {
        let mut l = clean_ledger();
        l.promotions = vec![
            PromotionRecord {
                index: 1,
                gen_before: 1,
                gen_after: 2,
                last_acked_epoch: 2,
                promoted_epoch: 3,
                resubmitted_through: 3,
                recovered_epoch: 3,
                stale_write_rejected: true,
                feeder_lease: 1,
            },
            PromotionRecord {
                index: 2,
                gen_before: 2,
                gen_after: 3,
                last_acked_epoch: 3,
                promoted_epoch: 3,
                resubmitted_through: 3,
                recovered_epoch: 3,
                stale_write_rejected: true,
                feeder_lease: 2,
            },
        ];
        l.feeder_failovers = 2;
        l.feeder_gen_retries = 2;
        l.feeder_final_lease = 3;
        l
    }

    #[test]
    fn a_clean_transcript_certifies() {
        let l = clean_ledger();
        let r = l.report("XGFT(2; 4,4; 1,4)", "disjoint:4");
        assert!(r.certified(), "findings: {:?}", r.findings);
        assert_eq!(r.checks.len(), 6);
        assert_eq!(l.total_faults(), 8);
        assert_eq!(l.induced_restarts(), 1);
    }

    #[test]
    fn a_clean_failover_transcript_certifies() {
        let l = clean_failover_ledger();
        let r = l.report("XGFT(2; 4,4; 1,4)", "disjoint:4");
        assert!(r.certified(), "findings: {:?}", r.findings);
        let failover = r
            .checks
            .iter()
            .find(|c| c.rule == RuleId::CtlSoakFailover)
            .expect("failover rule recorded");
        assert_eq!(failover.inspected, 2);
        let genrule = r
            .checks
            .iter()
            .find(|c| c.rule == RuleId::CtlSoakGen)
            .expect("gen rule recorded");
        assert_eq!(genrule.inspected, 2);
    }

    #[test]
    fn failover_violations_are_attributed_to_their_rule() {
        // Catch-up fell short of the submitted feed.
        let mut l = clean_failover_ledger();
        l.promotions[0].resubmitted_through = 2;
        let r = l.report("t", "s");
        assert!(!r.certified());
        assert!(r.findings.iter().all(|d| d.rule == RuleId::CtlSoakFailover));

        // Promotion lost an acked batch.
        let mut l = clean_failover_ledger();
        l.promotions[1].promoted_epoch = 2;
        l.promotions[1].resubmitted_through = 2;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakFailover && d.message.contains("regressed")));

        // The daemon spawned on promoted state serves something else.
        let mut l = clean_failover_ledger();
        l.promotions[0].recovered_epoch = 1;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakFailover && d.message.contains("spawned")));

        // Feeder never actually failed over.
        let mut l = clean_failover_ledger();
        l.feeder_failovers = 1;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakFailover && d.message.contains("failed over")));
    }

    #[test]
    fn generation_violations_are_attributed_to_their_rule() {
        // Broken chain: second promotion starts from the wrong lease.
        let mut l = clean_failover_ledger();
        l.promotions[1].gen_before = 1;
        l.promotions[1].gen_after = 2;
        let r = l.report("t", "s");
        assert!(!r.certified());
        assert!(r.findings.iter().all(|d| d.rule == RuleId::CtlSoakGen));

        // A generation bump that is not +1.
        let mut l = clean_failover_ledger();
        l.promotions[0].gen_after = 4;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakGen && d.message.contains("want +1")));

        // The stale-write probe went through: split-brain.
        let mut l = clean_failover_ledger();
        l.promotions[1].stale_write_rejected = false;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakGen && d.message.contains("split-brain")));

        // Acks crossed promotions without a counted fence retry.
        let mut l = clean_failover_ledger();
        l.feeder_gen_retries = 0;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakGen && d.message.contains("bypassed")));

        // A promotion the feeder never heard from (its lease skipped
        // from 1 straight to 3) demands only one crossing, not two.
        let mut l = clean_failover_ledger();
        l.promotions[1].feeder_lease = 1;
        l.feeder_gen_retries = 1;
        let r = l.report("t", "s");
        assert!(
            r.certified(),
            "skipped incarnation over-counted: {:?}",
            r.findings
        );
    }

    #[test]
    fn each_invariant_violation_is_attributed_to_its_rule() {
        // Double-applied batch: epoch runs ahead of batch id.
        let mut l = clean_ledger();
        l.acks[1].epoch = 3;
        l.acks[2].epoch = 4;
        l.final_epoch = 4;
        let r = l.report("t", "s");
        assert!(!r.certified());
        assert!(r
            .findings
            .iter()
            .all(|d| matches!(d.rule, RuleId::CtlSoakEpoch | RuleId::CtlSoakBatch)));

        // Recovery regressed below an acknowledged commit.
        let mut l = clean_ledger();
        l.restarts[0].recovered_epoch = 1;
        l.restarts[0].newest_valid_on_disk = Some(1);
        let r = l.report("t", "s");
        assert!(r.findings.iter().any(|d| d.rule == RuleId::CtlSoakRecover));

        // Recovery skipped the newest valid checkpoint.
        let mut l = clean_ledger();
        l.restarts[0].recovered_epoch = 2;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakRecover && d.message.contains("newest valid")));

        // A reader saw an impossible epoch.
        let mut l = clean_ledger();
        l.query_epoch_violations = 2;
        let r = l.report("t", "s");
        assert!(r.findings.iter().any(|d| d.rule == RuleId::CtlSoakServe));

        // Lost batch: accounting does not close.
        let mut l = clean_ledger();
        l.final_committed_batch_id = 2;
        l.final_digest = "0000000000000000".to_owned();
        let r = l.report("t", "s");
        assert!(r.findings.iter().any(|d| d.rule == RuleId::CtlSoakBatch));
    }

    #[test]
    fn the_escalation_schedule_escalates() {
        let phases = escalation();
        assert!(phases.len() >= 4);
        assert_eq!(phases[0].storage_permille, 0);
        assert_eq!(phases[0].wire_permille, 0);
        let last = phases.last().expect("non-empty");
        assert!(last.storage_permille > 0 && last.crash_permille > 0);
        // Crash kinds only appear after the survivable-fault rungs.
        let first_crash = phases.iter().position(|p| p.crash_permille > 0);
        let first_fault = phases
            .iter()
            .position(|p| p.storage_permille > 0 || p.wire_permille > 0);
        assert!(first_fault < first_crash);
    }
}
