//! Ledger and invariant evaluation for the `ctl_soak` chaos harness.
//!
//! The harness (the `ctl_soak` binary in `lmpr-ctld`) runs the routing
//! daemon under a seeded failpoint plan, records everything it observes
//! into a [`SoakLedger`], and asks [`SoakLedger::report`] to evaluate
//! the recovery invariants into an `lmpr-verify` [`Report`] — the same
//! machine-readable certificate shape every other checker in this repo
//! emits. The split keeps the invariant logic daemon-agnostic and unit
//! testable: this module never touches a socket or a thread; it judges
//! a transcript.
//!
//! The invariants, one rule each:
//!
//! * **`CTL-SOAK-EPOCH`** — fault-batch acknowledgements carry strictly
//!   increasing epochs with `epoch == batch_id`: the daemon commits
//!   exactly one epoch per applied batch, monotonically, across every
//!   crash and restart.
//! * **`CTL-SOAK-SERVE`** — no reply ever carried an epoch the daemon
//!   had not committed (readers can never observe an uncertified or
//!   regressed epoch).
//! * **`CTL-SOAK-RECOVER`** — every restart recovered exactly the
//!   newest checkpoint that validates on disk, and never an epoch below
//!   the last acknowledged commit (newest-valid-wins, no silent genesis
//!   bootstrap).
//! * **`CTL-SOAK-BATCH`** — at-least-once accounting closed out exact:
//!   every batch sent was committed exactly once, and the daemon's
//!   final state digest equals an offline replay's (no lost, reordered,
//!   or double-applied batch).

use lmpr_verify::{Diagnostic, Report, RuleId, Witness};

/// One rung of the escalating failpoint schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakPhase {
    /// Human-readable phase tag (stderr progress only).
    pub name: &'static str,
    /// Fault batches to drive during this phase.
    pub batches: u64,
    /// Storage-fault probability, permille per I/O op.
    pub storage_permille: u16,
    /// Wire-fault probability, permille per stream op.
    pub wire_permille: u16,
    /// Probability that a faulting storage op escalates to a crash
    /// kind, permille.
    pub crash_permille: u16,
}

/// The default escalation: a calm warm-up, then wire faults, then
/// survivable storage faults, then crash kinds, then everything at
/// once. The harness cycles the final rung until its fault and crash
/// quotas are met.
pub fn escalation() -> Vec<SoakPhase> {
    vec![
        SoakPhase {
            name: "calm",
            batches: 3,
            storage_permille: 0,
            wire_permille: 0,
            crash_permille: 0,
        },
        SoakPhase {
            name: "wire",
            batches: 8,
            storage_permille: 0,
            wire_permille: 140,
            crash_permille: 0,
        },
        SoakPhase {
            name: "storage",
            batches: 8,
            storage_permille: 140,
            wire_permille: 40,
            crash_permille: 0,
        },
        SoakPhase {
            name: "crash",
            batches: 10,
            storage_permille: 220,
            wire_permille: 60,
            crash_permille: 500,
        },
        SoakPhase {
            name: "mayhem",
            batches: 12,
            storage_permille: 300,
            wire_permille: 140,
            crash_permille: 450,
        },
    ]
}

/// Why a daemon incarnation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartCause {
    /// An injected crash kind (fsync-then-crash, torn rename).
    InjectedCrash,
    /// A fatal injected storage fault (ENOSPC, short write, EIO) on
    /// which the daemon correctly fail-stopped.
    FatalFault,
    /// A deliberate, graceful restart at a phase boundary.
    PhaseChange,
}

impl RestartCause {
    /// Stable tag for progress output.
    pub fn tag(self) -> &'static str {
        match self {
            RestartCause::InjectedCrash => "injected-crash",
            RestartCause::FatalFault => "fatal-fault",
            RestartCause::PhaseChange => "phase-change",
        }
    }

    /// Whether the failpoint layer induced this restart.
    pub fn induced(self) -> bool {
        !matches!(self, RestartCause::PhaseChange)
    }
}

/// One daemon restart, with what recovery was entitled to and what it
/// actually produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartRecord {
    /// Incarnation number of the daemon that came *up* (1-based; the
    /// initial boot is incarnation 0 and is not a restart).
    pub incarnation: u64,
    /// Why the previous incarnation ended.
    pub cause: RestartCause,
    /// Highest epoch acknowledged to the feeder before the restart.
    pub last_acked_epoch: u64,
    /// The newest epoch whose checkpoint validated in an independent,
    /// unfaulted scan of the state directory taken before the restart
    /// (`None` when nothing on disk validated).
    pub newest_valid_on_disk: Option<u64>,
    /// The epoch the restarted daemon reported serving.
    pub recovered_epoch: u64,
}

/// One fault-batch acknowledgement as the feeder saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// The batch id submitted.
    pub batch_id: u64,
    /// The epoch the acknowledgement carried.
    pub epoch: u64,
    /// False when the daemon deduplicated an at-least-once resend.
    pub applied: bool,
}

/// The harness transcript: everything the invariants are judged on.
/// All fields are driven by the deterministic feeder (or by daemon-side
/// counters that only the feeder's serial request stream advances), so
/// the report rendered from a fixed seed is byte-identical across runs.
#[derive(Debug, Clone, Default)]
pub struct SoakLedger {
    /// Fault batches submitted (including ones retried across crashes).
    pub batches_sent: u64,
    /// Acknowledgements, in feeder order.
    pub acks: Vec<BatchAck>,
    /// Restarts, in order.
    pub restarts: Vec<RestartRecord>,
    /// Epoch-rule violations observed by the concurrent query threads
    /// (an epoch above the submitted watermark, or below one already
    /// served). Zero on a correct daemon.
    pub query_epoch_violations: u64,
    /// Survivable storage faults injected into the daemon.
    pub storage_faults: u64,
    /// Crash-kind storage faults injected into the daemon.
    pub storage_crashes: u64,
    /// Wire faults injected into the feeder's own connections.
    pub feeder_wire_faults: u64,
    /// The daemon's final reported epoch.
    pub final_epoch: u64,
    /// The daemon's final committed feed batch id.
    pub final_committed_batch_id: u64,
    /// The daemon's final semantic digest (16 hex digits).
    pub final_digest: String,
    /// The offline replay's epoch after ingesting the same batches.
    pub mirror_epoch: u64,
    /// The offline replay's semantic digest.
    pub mirror_digest: String,
}

impl SoakLedger {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total deterministic injected faults (storage + feeder wire).
    pub fn total_faults(&self) -> u64 {
        self.storage_faults + self.storage_crashes + self.feeder_wire_faults
    }

    /// Restarts the failpoint layer induced (crashes and fail-stops).
    pub fn induced_restarts(&self) -> u64 {
        self.restarts.iter().filter(|r| r.cause.induced()).count() as u64
    }

    /// Evaluate the soak invariants into a verify-style certificate.
    pub fn report(&self, topology: &str, scheme: &str) -> Report {
        let mut r = Report::new(topology, scheme);

        // CTL-SOAK-EPOCH: acks strictly increase and each batch commits
        // exactly its own epoch.
        let before = r.findings.len();
        let mut prev = 0u64;
        for a in &self.acks {
            if a.epoch != a.batch_id {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakEpoch,
                    format!(
                        "batch {} acknowledged at epoch {} (want exactly one \
                         committed epoch per batch)",
                        a.batch_id, a.epoch
                    ),
                    Witness::None,
                ));
            }
            if a.epoch <= prev {
                r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakEpoch,
                    format!("ack epoch regressed or stalled: {} after {prev}", a.epoch),
                    Witness::None,
                ));
            }
            prev = a.epoch;
        }
        r.record(RuleId::CtlSoakEpoch, self.acks.len() as u64, before);

        // CTL-SOAK-SERVE: concurrent readers never saw an uncommitted
        // or regressed epoch.
        let before = r.findings.len();
        if self.query_epoch_violations > 0 {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakServe,
                format!(
                    "{} reply(ies) carried an epoch outside the committed set",
                    self.query_epoch_violations
                ),
                Witness::None,
            ));
        }
        r.record(RuleId::CtlSoakServe, self.acks.len() as u64, before);

        // CTL-SOAK-RECOVER: newest-valid-wins, never below an ack.
        let before = r.findings.len();
        for rr in &self.restarts {
            match rr.newest_valid_on_disk {
                None => r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakRecover,
                    format!(
                        "restart {} ({}): no checkpoint on disk validated — \
                         the fault sequence destroyed the durable state",
                        rr.incarnation,
                        rr.cause.tag()
                    ),
                    Witness::None,
                )),
                Some(nv) if rr.recovered_epoch != nv => r.findings.push(Diagnostic::error(
                    RuleId::CtlSoakRecover,
                    format!(
                        "restart {} ({}): recovered epoch {} but the newest \
                         valid checkpoint on disk was {}",
                        rr.incarnation,
                        rr.cause.tag(),
                        rr.recovered_epoch,
                        nv
                    ),
                    Witness::None,
                )),
                Some(_) if rr.recovered_epoch < rr.last_acked_epoch => {
                    r.findings.push(Diagnostic::error(
                        RuleId::CtlSoakRecover,
                        format!(
                            "restart {} ({}): recovered epoch {} below the \
                             acknowledged commit {}",
                            rr.incarnation,
                            rr.cause.tag(),
                            rr.recovered_epoch,
                            rr.last_acked_epoch
                        ),
                        Witness::None,
                    ));
                }
                Some(_) => {}
            }
        }
        r.record(RuleId::CtlSoakRecover, self.restarts.len() as u64, before);

        // CTL-SOAK-BATCH: exact at-least-once accounting.
        let before = r.findings.len();
        if self.final_committed_batch_id != self.batches_sent {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakBatch,
                format!(
                    "sent {} batches but the daemon committed through {}",
                    self.batches_sent, self.final_committed_batch_id
                ),
                Witness::None,
            ));
        }
        if self.final_epoch != self.mirror_epoch {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakBatch,
                format!(
                    "final epoch {} disagrees with the offline replay's {}",
                    self.final_epoch, self.mirror_epoch
                ),
                Witness::None,
            ));
        }
        if self.final_digest != self.mirror_digest {
            r.findings.push(Diagnostic::error(
                RuleId::CtlSoakBatch,
                format!(
                    "final digest {} disagrees with the offline replay's {} \
                     (a batch was lost or double-applied)",
                    self.final_digest, self.mirror_digest
                ),
                Witness::None,
            ));
        }
        r.record(RuleId::CtlSoakBatch, self.batches_sent, before);

        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_ledger() -> SoakLedger {
        let mut l = SoakLedger::new();
        l.batches_sent = 3;
        l.acks = vec![
            BatchAck {
                batch_id: 1,
                epoch: 1,
                applied: true,
            },
            BatchAck {
                batch_id: 2,
                epoch: 2,
                applied: true,
            },
            // An at-least-once resend the daemon deduplicated.
            BatchAck {
                batch_id: 3,
                epoch: 3,
                applied: false,
            },
        ];
        l.restarts = vec![RestartRecord {
            incarnation: 1,
            cause: RestartCause::InjectedCrash,
            last_acked_epoch: 2,
            newest_valid_on_disk: Some(3),
            recovered_epoch: 3,
        }];
        l.storage_faults = 5;
        l.storage_crashes = 1;
        l.feeder_wire_faults = 2;
        l.final_epoch = 3;
        l.final_committed_batch_id = 3;
        l.final_digest = "00000000deadbeef".to_owned();
        l.mirror_epoch = 3;
        l.mirror_digest = "00000000deadbeef".to_owned();
        l
    }

    #[test]
    fn a_clean_transcript_certifies() {
        let l = clean_ledger();
        let r = l.report("XGFT(2; 4,4; 1,4)", "disjoint:4");
        assert!(r.certified(), "findings: {:?}", r.findings);
        assert_eq!(r.checks.len(), 4);
        assert_eq!(l.total_faults(), 8);
        assert_eq!(l.induced_restarts(), 1);
    }

    #[test]
    fn each_invariant_violation_is_attributed_to_its_rule() {
        // Double-applied batch: epoch runs ahead of batch id.
        let mut l = clean_ledger();
        l.acks[1].epoch = 3;
        l.acks[2].epoch = 4;
        l.final_epoch = 4;
        let r = l.report("t", "s");
        assert!(!r.certified());
        assert!(r
            .findings
            .iter()
            .all(|d| matches!(d.rule, RuleId::CtlSoakEpoch | RuleId::CtlSoakBatch)));

        // Recovery regressed below an acknowledged commit.
        let mut l = clean_ledger();
        l.restarts[0].recovered_epoch = 1;
        l.restarts[0].newest_valid_on_disk = Some(1);
        let r = l.report("t", "s");
        assert!(r.findings.iter().any(|d| d.rule == RuleId::CtlSoakRecover));

        // Recovery skipped the newest valid checkpoint.
        let mut l = clean_ledger();
        l.restarts[0].recovered_epoch = 2;
        let r = l.report("t", "s");
        assert!(r
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CtlSoakRecover && d.message.contains("newest valid")));

        // A reader saw an impossible epoch.
        let mut l = clean_ledger();
        l.query_epoch_violations = 2;
        let r = l.report("t", "s");
        assert!(r.findings.iter().any(|d| d.rule == RuleId::CtlSoakServe));

        // Lost batch: accounting does not close.
        let mut l = clean_ledger();
        l.final_committed_batch_id = 2;
        l.final_digest = "0000000000000000".to_owned();
        let r = l.report("t", "s");
        assert!(r.findings.iter().any(|d| d.rule == RuleId::CtlSoakBatch));
    }

    #[test]
    fn the_escalation_schedule_escalates() {
        let phases = escalation();
        assert!(phases.len() >= 4);
        assert_eq!(phases[0].storage_permille, 0);
        assert_eq!(phases[0].wire_permille, 0);
        let last = phases.last().expect("non-empty");
        assert!(last.storage_permille > 0 && last.crash_permille > 0);
        // Crash kinds only appear after the survivable-fault rungs.
        let first_crash = phases.iter().position(|p| p.crash_permille > 0);
        let first_fault = phases
            .iter()
            .position(|p| p.storage_permille > 0 || p.wire_permille > 0);
        assert!(first_fault < first_crash);
    }
}
