//! E11 — degraded-mode routing under random link failures.
//!
//! The experiment body lives here in the library (rather than in the
//! `faults` binary) so the golden-equivalence test can run the exact
//! harness in-process and byte-compare its serialized document against
//! the committed `results/faults_quick.json`.
//!
//! Flow-level evaluation on XGFT(3; 4,4,8; 1,4,4) (the 8-port 3-tree of
//! §5): sample random link-failure sets at several failure rates, route
//! uniform all-to-all traffic through the shared
//! [`SelectionEngine`](lmpr_core::SelectionEngine) (via
//! [`DegradedLoads`]) and report, per heuristic and path budget, the
//! degraded maximum link load and the probability that an SD pair loses
//! connectivity.
//!
//! A second, flit-level section replays a subset of the fault samples
//! through the cycle-accurate simulator with the *blocking* fault policy
//! and a watchdog: runs that survive contribute throughput records,
//! runs that jam terminate with a typed
//! [`SimError`](lmpr_flitsim::SimError) that is serialized into the
//! output as a structured failure record (deadlock reports field by
//! field) instead of a bare error string.

use crate::{Failure, Record};
use lmpr_core::{FaultAware, Router, RouterKind};
use lmpr_flitsim::{FaultPolicy, FlitSim, SimConfig, TrafficMode};
use lmpr_flowsim::DegradedLoads;
use lmpr_traffic::TrafficMatrix;
use xgft::{FaultSet, Topology, XgftSpec};

/// Seed for the random-K heuristic (a Table-1 seed, unrelated to the
/// fault-sampling seeds).
const RANDOM_K_SEED: u64 = 11;

/// Everything one full harness invocation produced.
#[derive(Debug, Clone)]
pub struct FaultsRun {
    /// Successful-run records (`faults`, `faults-flit`).
    pub records: Vec<Record>,
    /// Structured failures of flit-level replays that jammed.
    pub failures: Vec<Failure>,
}

/// Run the degraded-routing experiment at the quick or full budget.
pub fn run(quick: bool) -> FaultsRun {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    let label = topo.spec().to_string();
    let tm = TrafficMatrix::uniform(topo.num_pns(), 1.0);
    let fault_seeds: u64 = if quick { 3 } else { 10 };
    let rates = [0.0, 0.01, 0.05];

    println!("E11 — degraded-mode routing under random link failures");
    println!(
        "{label}, uniform all-to-all, {} links, {} fault samples per rate\n",
        topo.num_links(),
        fault_seeds
    );
    println!(
        "{:>6} {:>16} {:>3} {:>14} {:>16}",
        "rate", "scheme", "K", "max load", "P(disconnect)"
    );

    let mut records = Vec::new();
    for rate in rates {
        for (router, k) in schemes() {
            let (mut load_sum, mut disc_sum) = (0.0f64, 0.0f64);
            for seed in 0..fault_seeds {
                let faults = FaultSet::sample(&topo, rate, 0.0, seed);
                let d = DegradedLoads::accumulate(&topo, &router, &tm, &faults);
                load_sum += d.max_load();
                disc_sum += d.disconnection_rate();
            }
            let max_load = load_sum / fault_seeds as f64;
            let p_disc = disc_sum / fault_seeds as f64;
            println!(
                "{:>5.0}% {:>16} {:>3} {:>14.2} {:>16.4}",
                rate * 100.0,
                router.name(),
                k,
                max_load,
                p_disc
            );
            records.push(Record {
                experiment: "faults".into(),
                topology: label.clone(),
                scheme: router.name(),
                k,
                x: rate,
                y: max_load,
                aux: Some(p_disc),
            });
        }
        println!();
    }

    let failures = flit_level_replay(&topo, &label, &mut records, quick);
    FaultsRun { records, failures }
}

/// Replay a subset of the sampled fault sets through the flit simulator
/// under the blocking policy. Surviving runs become throughput records
/// (`experiment: "faults-flit"`); jammed runs become structured failure
/// records carrying the typed deadlock report.
fn flit_level_replay(
    topo: &Topology,
    label: &str,
    records: &mut Vec<Record>,
    quick: bool,
) -> Vec<Failure> {
    let rate = 0.05;
    let seeds: u64 = if quick { 1 } else { 2 };
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: if quick { 4_000 } else { 8_000 },
        offered_load: 0.3,
        watchdog_cycles: 2_000,
        ..SimConfig::default()
    };
    let mut failures = Vec::new();
    println!(
        "flit-level replay at rate {:.0}%, blocking policy:",
        rate * 100.0
    );
    for (router, k) in [
        (RouterKind::DModK, 1u64),
        (RouterKind::Disjoint(4), 4),
        (RouterKind::Disjoint(8), 8),
    ] {
        for seed in 0..seeds {
            let faults = FaultSet::sample(topo, rate, 0.0, seed);
            let fa = FaultAware::new(router, faults.clone());
            let result = FlitSim::with_faults(
                topo,
                fa,
                cfg,
                TrafficMode::Uniform,
                &faults,
                FaultPolicy::Block,
            )
            .and_then(|mut sim| sim.run());
            match result {
                Ok(stats) => {
                    println!(
                        "  {:>16} K={k} seed={seed}: throughput {:.3}, disconnected {}",
                        router.name(),
                        stats.accepted_throughput(),
                        stats.disconnected_messages
                    );
                    records.push(Record {
                        experiment: "faults-flit".into(),
                        topology: label.to_owned(),
                        scheme: router.name(),
                        k,
                        x: rate,
                        y: stats.accepted_throughput(),
                        aux: Some(stats.disconnected_messages as f64),
                    });
                }
                Err(e) => {
                    println!("  {:>16} K={k} seed={seed}: {e}", router.name());
                    failures.push(Failure {
                        experiment: "faults-flit".into(),
                        topology: label.to_owned(),
                        scheme: router.name(),
                        k,
                        x: rate,
                        seed,
                        error: e,
                    });
                }
            }
        }
    }
    println!();
    failures
}

/// The sweep's heuristic × budget grid: d-mod-k (single-path baseline)
/// plus shift-1, disjoint and random at K ∈ {1, 4, 8}.
fn schemes() -> Vec<(RouterKind, u64)> {
    let mut out = vec![(RouterKind::DModK, 1)];
    for k in [1u64, 4, 8] {
        out.push((RouterKind::ShiftOne(k), k));
        out.push((RouterKind::Disjoint(k), k));
        out.push((RouterKind::RandomK(k, RANDOM_K_SEED), k));
    }
    out
}
