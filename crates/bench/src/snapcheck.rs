//! SNAP-* diagnostics: executable certificates for the crash-consistent
//! snapshot subsystem, reported through the same [`Report`] machinery
//! as the static routing checks so `verify --ci` gates on them
//! uniformly.
//!
//! | Rule | Certificate |
//! |---|---|
//! | `SNAP-ROUNDTRIP` | restore(snapshot(S)) re-serializes to the same bytes and agrees with S on stats and conservation ledger |
//! | `SNAP-REJECT` | header truncation, foreign magic, future versions, payload truncation and every sampled bit flip are rejected with the matching typed [`SnapshotError`] — never a panic, never a silent accept |
//! | `SNAP-RESUME` | a run snapshotted mid-flight (inside the fail→recover outage, with retransmission timers armed) and restored reaches the horizon byte-identical to the uninterrupted run |
//!
//! The checks run on the resilient configuration with the richest
//! snapshot surface: dynamic fault schedule, lagged routing view,
//! retransmission ledger, per-source RNG streams.

use lmpr_core::ShiftOne;
use lmpr_flitsim::{
    FaultPolicy, FlitSim, ResilienceConfig, RetxConfig, SimConfig, SnapshotError, TrafficMode,
    SNAPSHOT_VERSION,
};
use lmpr_verify::{Diagnostic, Report, RuleId, Witness};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xgft::{FaultChange, FaultEvent, FaultSchedule, Topology, XgftSpec};

const LABEL: &str = "XGFT(2; 4,4; 1,4)";
const SCHEME: &str = "snapshot(shift-1(4))";
const HORIZON: u64 = 5_000;

/// The three snapshot certificates of the `--ci` matrix.
pub fn snapshot_reports() -> Vec<Report> {
    let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).expect("valid spec"));
    vec![
        roundtrip_report(&topo),
        reject_report(&topo),
        resume_report(&topo),
    ]
}

/// The resilient fixture: one top-level up-link dies at 1 500 and is
/// repaired at 3 000, with retransmission and a lagged routing view —
/// every serialized subsystem is exercised.
fn fixture(topo: &Topology) -> FlitSim<ShiftOne> {
    let link = topo.up_link(2, 0, 0);
    let schedule = FaultSchedule::scripted(vec![
        FaultEvent {
            at: 1_500,
            change: FaultChange::LinkDown(link),
        },
        FaultEvent {
            at: 3_000,
            change: FaultChange::LinkUp(link),
        },
    ]);
    FlitSim::with_schedule(
        topo,
        ShiftOne::new(4),
        SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: HORIZON - 1_000,
            offered_load: 0.5,
            ..SimConfig::default()
        },
        TrafficMode::Uniform,
        schedule,
        FaultPolicy::Drop,
        ResilienceConfig {
            detect_cycles: 100,
            reconverge_cycles: 200,
            retx: Some(RetxConfig {
                timeout: 800,
                max_retries: 4,
            }),
        },
    )
    .expect("fixture config is valid")
}

fn step_to(sim: &mut FlitSim<ShiftOne>, cycle: u64) {
    while sim.now() < cycle {
        sim.step();
    }
}

fn finding(rule: RuleId, message: String) -> Diagnostic {
    Diagnostic::error(rule, message, Witness::None)
}

/// SNAP-ROUNDTRIP: snapshot → restore → re-serialize is the identity,
/// and the restored simulator agrees on every observable.
fn roundtrip_report(topo: &Topology) -> Report {
    let mut report = Report::new(LABEL, SCHEME);
    let before = report.findings.len();

    let mut sim = fixture(topo);
    step_to(&mut sim, 2_000);
    let bytes = sim.snapshot();
    let mut inspected = bytes.len() as u64;
    match FlitSim::restore(ShiftOne::new(4), &bytes) {
        Ok(restored) => {
            if restored.snapshot() != bytes {
                report.findings.push(finding(
                    RuleId::SnapRoundtrip,
                    "restored state re-serialized to different bytes".to_owned(),
                ));
            }
            if restored.now() != sim.now() {
                report.findings.push(finding(
                    RuleId::SnapRoundtrip,
                    format!(
                        "restored cycle {} != snapshotted cycle {}",
                        restored.now(),
                        sim.now()
                    ),
                ));
            }
            if restored.stats() != sim.stats() {
                report.findings.push(finding(
                    RuleId::SnapRoundtrip,
                    "restored statistics differ from the snapshotted run".to_owned(),
                ));
            }
            if restored.conservation_ledger() != sim.conservation_ledger() {
                report.findings.push(finding(
                    RuleId::SnapRoundtrip,
                    "restored conservation ledger differs from the snapshotted run".to_owned(),
                ));
            }
        }
        Err(e) => {
            inspected = 0;
            report.findings.push(finding(
                RuleId::SnapRoundtrip,
                format!("pristine snapshot failed to restore: {e}"),
            ));
        }
    }
    report.record(RuleId::SnapRoundtrip, inspected, before);
    report
}

/// SNAP-REJECT: every corruption class yields its typed error.
fn reject_report(topo: &Topology) -> Report {
    let mut report = Report::new(LABEL, SCHEME);
    let before = report.findings.len();

    let mut sim = fixture(topo);
    step_to(&mut sim, 2_000);
    let good = sim.snapshot();
    let mut inspected = 0u64;
    let mut expect = |case: &str,
                      got: Result<(), SnapshotError>,
                      want: fn(&SnapshotError) -> bool,
                      report: &mut Report| {
        inspected += 1;
        match got {
            Err(e) if want(&e) => {}
            Err(e) => report.findings.push(finding(
                RuleId::SnapReject,
                format!("{case}: rejected, but with the wrong error: {e}"),
            )),
            Ok(()) => report.findings.push(finding(
                RuleId::SnapReject,
                format!("{case}: corrupt snapshot was accepted"),
            )),
        }
    };
    let restore = |bytes: &[u8]| FlitSim::restore(ShiftOne::new(4), bytes).map(|_| ());

    expect(
        "header truncation",
        restore(&good[..10]),
        |e| matches!(e, SnapshotError::TooShort),
        &mut report,
    );

    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    expect(
        "foreign magic",
        restore(&bad),
        |e| matches!(e, SnapshotError::BadMagic),
        &mut report,
    );

    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    expect(
        "future version",
        restore(&bad),
        |e| matches!(e, SnapshotError::UnsupportedVersion(_)),
        &mut report,
    );

    expect(
        "payload truncation",
        restore(&good[..good.len() - 5]),
        |e| matches!(e, SnapshotError::LengthMismatch { .. }),
        &mut report,
    );

    let mut rng = SmallRng::seed_from_u64(0x534E_4150); // "SNAP"
    for _ in 0..16 {
        let mut bad = good.clone();
        let i = rng.gen_range(28..bad.len() as u64) as usize;
        bad[i] ^= 1 << rng.gen_range(0u8..8);
        expect(
            "payload bit flip",
            restore(&bad),
            |e| matches!(e, SnapshotError::ChecksumMismatch { .. }),
            &mut report,
        );
    }

    report.record(RuleId::SnapReject, inspected, before);
    report
}

/// SNAP-RESUME: the resume-equivalence certificate. Snapshot inside the
/// outage (cycle 2 345 — failed link detected, retransmission timers
/// armed, routing view lagging), restore, run to the horizon; the final
/// state must serialize byte-identically to the uninterrupted run's.
fn resume_report(topo: &Topology) -> Report {
    let mut report = Report::new(LABEL, SCHEME);
    let before = report.findings.len();

    let mut uninterrupted = fixture(topo);
    step_to(&mut uninterrupted, HORIZON);
    let final_bytes = uninterrupted.snapshot();

    let mut recorder = fixture(topo);
    step_to(&mut recorder, 2_345);
    let mid = recorder.snapshot();
    match FlitSim::restore(ShiftOne::new(4), &mid) {
        Ok(mut resumed) => {
            step_to(&mut resumed, HORIZON);
            if resumed.stats() != uninterrupted.stats() {
                report.findings.push(finding(
                    RuleId::SnapResume,
                    "resumed run's statistics diverged from the uninterrupted run".to_owned(),
                ));
            }
            if resumed.conservation_ledger() != uninterrupted.conservation_ledger() {
                report.findings.push(finding(
                    RuleId::SnapResume,
                    "resumed run's conservation ledger diverged".to_owned(),
                ));
            }
            if resumed.snapshot() != final_bytes {
                report.findings.push(finding(
                    RuleId::SnapResume,
                    "resumed run's final state is not byte-identical".to_owned(),
                ));
            }
        }
        Err(e) => report.findings.push(finding(
            RuleId::SnapResume,
            format!("mid-run snapshot failed to restore: {e}"),
        )),
    }
    report.record(RuleId::SnapResume, HORIZON, before);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_snapshot_reports_certify() {
        for report in snapshot_reports() {
            assert!(
                report.certified(),
                "{} refuted: {:?}",
                report.scheme,
                report.findings
            );
        }
    }
}
