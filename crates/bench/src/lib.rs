//! Shared plumbing for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Binaries (run with `--release`):
//!
//! * `fig4`    — Figure 4(a–d): average maximum link load vs number of
//!   paths, flow level, random permutations with the 99 % CI rule.
//! * `table1`  — Table 1: saturation throughput under uniform traffic,
//!   flit level, per heuristic and path budget.
//! * `fig5`    — Figure 5: average message delay vs offered load, flit
//!   level.
//! * `theorems` — executable checks of Theorem 1, Theorem 2 and the
//!   InfiniBand LID budget motivation.
//!
//! Each binary prints a human-readable table and, with `--json PATH`,
//! writes machine-readable results used by EXPERIMENTS.md.

#![forbid(unsafe_code)]

use lmpr_core::RouterKind;
use lmpr_flitsim::SimError;
use xgft::{Topology, XgftSpec};

pub mod chaos;
pub mod faults;
pub mod jsonio;
pub mod orchestrator;
pub mod snapcheck;
pub mod soak;

/// The evaluation topologies of §5, keyed the way the paper labels them.
pub fn topology_by_name(name: &str) -> Option<(String, Topology)> {
    let spec = match name {
        // Figure 4 panels.
        "a" | "16port2tree" => XgftSpec::m_port_n_tree(16, 2),
        "b" | "16port3tree" => XgftSpec::m_port_n_tree(16, 3),
        "c" | "24port2tree" => XgftSpec::m_port_n_tree(24, 2),
        "d" | "24port3tree" => XgftSpec::m_port_n_tree(24, 3),
        // The remaining §5 topologies.
        "8port2tree" => XgftSpec::m_port_n_tree(8, 2),
        "8port3tree" => XgftSpec::m_port_n_tree(8, 3),
        _ => return None,
    }
    .expect("§5 topologies are valid");
    let label = format!("{spec}");
    Some((label, Topology::new(spec)))
}

/// Geometric-ish ladder of path budgets from 1 to `max` inclusive —
/// the x-axis of Figure 4.
pub fn k_ladder(max: u64) -> Vec<u64> {
    let mut ks = vec![1u64];
    let mut k = 2;
    while k < max {
        ks.push(k);
        k = if k < 4 { k + 1 } else { k * 3 / 2 };
    }
    if max > 1 {
        ks.push(max);
    }
    ks.dedup();
    ks
}

/// The heuristics compared in Figure 4 and Table 1 at a given budget.
pub fn heuristics_at(k: u64, random_seed: u64) -> Vec<RouterKind> {
    vec![
        RouterKind::ShiftOne(k),
        RouterKind::Disjoint(k),
        RouterKind::RandomK(k, random_seed),
    ]
}

/// One emitted experiment record (schema shared across binaries so the
/// JSON files can be post-processed uniformly).
#[derive(Debug, Clone)]
pub struct Record {
    /// Experiment id: `fig4a`, `table1`, `fig5`, `theorems`, …
    pub experiment: String,
    /// Topology label (`XGFT(…)`).
    pub topology: String,
    /// Routing scheme label.
    pub scheme: String,
    /// Path budget `K` (0 = not applicable / unlimited).
    pub k: u64,
    /// Independent variable (number of paths, offered load, …).
    pub x: f64,
    /// Measured value (avg max load, throughput, delay, ratio, …).
    pub y: f64,
    /// Secondary value (CI half-width, completion rate, …), if any.
    pub aux: Option<f64>,
}

/// Write records as pretty JSON to `path` (hand-rolled serializer —
/// the build environment cannot pull in serde_json; the layout matches
/// `serde_json::to_string_pretty`'s 2-space indentation).
pub fn write_json(path: &str, records: &[Record]) -> std::io::Result<()> {
    std::fs::write(path, records_to_json(records))
}

/// Render records as a pretty-printed JSON array.
pub fn records_to_json(records: &[Record]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("  {\n");
        out.push_str(&format!(
            "    \"experiment\": {},\n",
            json_string(&r.experiment)
        ));
        out.push_str(&format!(
            "    \"topology\": {},\n",
            json_string(&r.topology)
        ));
        out.push_str(&format!("    \"scheme\": {},\n", json_string(&r.scheme)));
        out.push_str(&format!("    \"k\": {},\n", r.k));
        out.push_str(&format!("    \"x\": {},\n", json_f64(r.x)));
        out.push_str(&format!("    \"y\": {},\n", json_f64(r.y)));
        match r.aux {
            Some(a) => out.push_str(&format!("    \"aux\": {}\n", json_f64(a))),
            None => out.push_str("    \"aux\": null\n"),
        }
        out.push_str("  }");
    }
    out.push_str("\n]");
    if records.is_empty() {
        return "[]".to_owned();
    }
    out
}

/// One structured failure of a simulation run: the scenario that failed
/// plus the typed error, so chaotic runs are analyzable post-hoc instead
/// of collapsing into a bare error string.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Experiment id the failing run belonged to.
    pub experiment: String,
    /// Topology label.
    pub topology: String,
    /// Routing scheme label.
    pub scheme: String,
    /// Path budget `K`.
    pub k: u64,
    /// Independent variable of the failing run (fault rate, load, …).
    pub x: f64,
    /// Seed of the failing run.
    pub seed: u64,
    /// The typed simulator error.
    pub error: SimError,
}

/// Serialize a [`SimError`] as a JSON object with a `kind` tag; a
/// deadlock carries the full [`DeadlockReport`](lmpr_flitsim::DeadlockReport)
/// field by field.
pub fn sim_error_to_json(e: &SimError) -> String {
    match e {
        SimError::Config(c) => format!(
            "{{\"kind\": \"config\", \"message\": {}}}",
            json_string(&c.to_string())
        ),
        SimError::Traffic(t) => format!(
            "{{\"kind\": \"traffic\", \"message\": {}}}",
            json_string(&t.to_string())
        ),
        SimError::TooFewPns(n) => {
            format!("{{\"kind\": \"too-few-pns\", \"num_pns\": {n}}}")
        }
        SimError::Deadlock(r) => format!(
            "{{\"kind\": \"deadlock\", \"cycle\": {}, \"stalled_for\": {}, \
             \"flits_in_network\": {}, \"in_flight_packets\": {}, \
             \"blocked_ports\": {}, \"source_backlog\": {}}}",
            r.cycle,
            r.stalled_for,
            r.flits_in_network,
            r.in_flight_packets,
            r.blocked_ports,
            r.source_backlog
        ),
    }
}

/// Render one [`Failure`] as the exact indented JSON object block that
/// [`document_to_json`] embeds in the `failures` array. The orchestrator
/// journals these pre-rendered blocks so a resumed sweep reproduces the
/// final document byte for byte without having to re-parse a typed
/// [`SimError`] out of the journal.
pub fn failure_to_json(f: &Failure) -> String {
    let mut out = String::from("    {\n");
    out.push_str(&format!(
        "      \"experiment\": {},\n",
        json_string(&f.experiment)
    ));
    out.push_str(&format!(
        "      \"topology\": {},\n",
        json_string(&f.topology)
    ));
    out.push_str(&format!("      \"scheme\": {},\n", json_string(&f.scheme)));
    out.push_str(&format!("      \"k\": {},\n", f.k));
    out.push_str(&format!("      \"x\": {},\n", json_f64(f.x)));
    out.push_str(&format!("      \"seed\": {},\n", f.seed));
    out.push_str(&format!(
        "      \"error\": {}\n",
        sim_error_to_json(&f.error)
    ));
    out.push_str("    }");
    out
}

/// Render a results document from records plus *pre-rendered* failure
/// object blocks (the [`failure_to_json`] layout). This is the single
/// serialization path for `{"records": […], "failures": […]}` documents:
/// [`document_to_json`] and the resumable orchestrator both delegate
/// here, which is what makes a kill/resume run byte-identical to an
/// uninterrupted one.
pub fn document_from_parts(records: &[Record], failure_objects: &[String]) -> String {
    let records_json = records_to_json(records).replace('\n', "\n  ");
    let mut out = format!("{{\n  \"records\": {records_json},\n  \"failures\": [");
    for (i, obj) in failure_objects.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(obj);
    }
    if !failure_objects.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Render a results document holding both successful-run records and
/// structured failures: `{"records": […], "failures": […]}`.
pub fn document_to_json(records: &[Record], failures: &[Failure]) -> String {
    let objects: Vec<String> = failures.iter().map(failure_to_json).collect();
    document_from_parts(records, &objects)
}

/// Write a records + failures document as pretty JSON to `path`.
pub fn write_document(path: &str, records: &[Record], failures: &[Failure]) -> std::io::Result<()> {
    std::fs::write(path, document_to_json(records, failures))
}

/// JSON number for an `f64` (`1.0`, not `1`, for integral values —
/// matching serde_json's float formatting; non-finite values become
/// `null` as serde_json has no representation for them either).
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// JSON string literal with the mandatory escapes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse `--json PATH` and `--quick` style flags from `args`.
#[derive(Debug, Default, Clone)]
pub struct CommonArgs {
    /// Output path for machine-readable results.
    pub json: Option<String>,
    /// Reduced statistical budget for smoke runs.
    pub quick: bool,
    /// Positional (non-flag) arguments.
    pub positional: Vec<String>,
}

impl CommonArgs {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = CommonArgs::default();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => {
                    out.json = Some(it.next().ok_or_else(|| "--json needs a path".to_owned())?);
                }
                "--quick" => out.quick = true,
                _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
                _ => out.positional.push(a),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_hit_endpoints() {
        assert_eq!(k_ladder(1), vec![1]);
        assert_eq!(k_ladder(8), vec![1, 2, 3, 4, 6, 8]);
        let l = k_ladder(144);
        assert_eq!(*l.first().unwrap(), 1);
        assert_eq!(*l.last().unwrap(), 144);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn topologies_resolve() {
        let (label, t) = topology_by_name("b").unwrap();
        assert_eq!(label, "XGFT(3; 8,8,16; 1,8,8)");
        assert_eq!(t.num_pns(), 1024);
        assert!(topology_by_name("z").is_none());
        assert_eq!(topology_by_name("d").unwrap().1.num_pns(), 3456);
    }

    #[test]
    fn args_parse() {
        let a = CommonArgs::parse(
            ["a", "--quick", "--json", "out.json"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(a.quick);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.positional, vec!["a"]);
        assert!(CommonArgs::parse(["--nope"].into_iter().map(String::from)).is_err());
        assert!(CommonArgs::parse(["--json"].into_iter().map(String::from)).is_err());
    }

    #[test]
    fn failures_serialize_structured() {
        use lmpr_flitsim::{ConfigError, DeadlockReport};
        let rec = Record {
            experiment: "chaos-sweep".into(),
            topology: "XGFT(2; 4,4; 1,4)".into(),
            scheme: "d-mod-k".into(),
            k: 1,
            x: 0.05,
            y: 0.5,
            aux: None,
        };
        let deadlock = Failure {
            experiment: "chaos-sweep".into(),
            topology: "XGFT(2; 4,4; 1,4)".into(),
            scheme: "disjoint(4)".into(),
            k: 4,
            x: 0.05,
            seed: 7,
            error: SimError::Deadlock(DeadlockReport {
                cycle: 12_345,
                stalled_for: 2_000,
                flits_in_network: 96,
                in_flight_packets: 6,
                blocked_ports: 3,
                source_backlog: 40,
            }),
        };
        let doc = document_to_json(&[rec], &[deadlock]);
        // The deadlock is a kind-tagged object with every report field,
        // not a flattened message string.
        assert!(doc.contains("\"kind\": \"deadlock\""));
        assert!(doc.contains("\"cycle\": 12345"));
        assert!(doc.contains("\"stalled_for\": 2000"));
        assert!(doc.contains("\"flits_in_network\": 96"));
        assert!(doc.contains("\"in_flight_packets\": 6"));
        assert!(doc.contains("\"blocked_ports\": 3"));
        assert!(doc.contains("\"source_backlog\": 40"));
        assert!(doc.contains("\"seed\": 7"));
        assert!(doc.contains("\"records\": ["));
        assert!(doc.contains("\"failures\": ["));
        // Other SimError variants keep their kind tag and message.
        let cfg = sim_error_to_json(&SimError::Config(ConfigError::ZeroPacketFlits));
        assert!(cfg.starts_with("{\"kind\": \"config\""));
        assert!(sim_error_to_json(&SimError::TooFewPns(1)).contains("\"num_pns\": 1"));
        // Braces balance (the serializer is hand-rolled).
        let depth = doc.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn empty_document_is_well_formed() {
        let doc = document_to_json(&[], &[]);
        assert_eq!(doc, "{\n  \"records\": [],\n  \"failures\": []\n}");
    }

    #[test]
    fn heuristic_set_is_the_papers() {
        let hs = heuristics_at(4, 0);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[0], RouterKind::ShiftOne(4));
        assert_eq!(hs[1], RouterKind::Disjoint(4));
        assert_eq!(hs[2], RouterKind::RandomK(4, 0));
    }
}
