//! Figure 5 — average message delay vs offered load.
//!
//! Flit-level simulation on XGFT(3; 4,4,8; 1,4,4) under uniform random
//! traffic, reproducing the paper's curve set: d-mod-k plus
//! {disjoint, shift-1, random} × K ∈ {2, 8}.
//!
//! Usage: `fig5 [--quick] [--json PATH]`

#![forbid(unsafe_code)]

use lmpr_bench::{write_json, CommonArgs, Record};
use lmpr_core::{Router, RouterKind};
use lmpr_flitsim::sweep::run_sweep;
use lmpr_flitsim::SimConfig;
use xgft::{Topology, XgftSpec};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fig5: {e}");
            std::process::exit(2);
        }
    };
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    let label = topo.spec().to_string();
    let cfg = if args.quick {
        SimConfig {
            warmup_cycles: 3_000,
            measure_cycles: 8_000,
            ..SimConfig::default()
        }
    } else {
        SimConfig::default()
    };
    let loads: Vec<f64> = if args.quick {
        vec![0.1, 0.3, 0.5, 0.6, 0.7, 0.8]
    } else {
        (1..=19).map(|i| i as f64 * 0.05).collect()
    };
    let schemes = [
        RouterKind::DModK,
        RouterKind::Disjoint(2),
        RouterKind::Disjoint(8),
        RouterKind::ShiftOne(2),
        RouterKind::ShiftOne(8),
        RouterKind::RandomK(2, 11),
        RouterKind::RandomK(8, 11),
    ];

    println!("Figure 5 — average message delay (cycles) vs offered load");
    println!("uniform random traffic, {label}\n");
    print!("{:>6}", "load");
    for s in &schemes {
        print!(" {:>13}", s.name());
    }
    println!();

    let mut records = Vec::new();
    let mut columns = Vec::new();
    for s in &schemes {
        columns.push(run_sweep(&topo, s, cfg, &loads, 0).expect("sweep runs"));
    }
    for (i, &load) in loads.iter().enumerate() {
        print!("{:>5.0}%", load * 100.0);
        for (c, s) in columns.iter().zip(&schemes) {
            let p = c[i];
            // Past saturation, surviving-message delays lose meaning;
            // flag columns whose completion collapsed.
            if p.completion_rate < 0.5 {
                print!(" {:>13}", "sat");
            } else {
                print!(" {:>13.1}", p.avg_delay);
            }
            records.push(Record {
                experiment: "fig5".into(),
                topology: label.clone(),
                scheme: s.name(),
                k: s.budget().unwrap_or(0),
                x: load,
                y: p.avg_delay,
                aux: Some(p.completion_rate),
            });
        }
        println!();
    }

    if let Some(path) = args.json {
        write_json(&path, &records).expect("writing results JSON");
        println!("\nwrote {} records", records.len());
    }
}
