//! Figure 4 — average maximum link load vs number of paths.
//!
//! Flow-level simulation of random permutation traffic with the paper's
//! 99 % confidence-interval stopping rule. Panels:
//!
//! * `a` — XGFT(2; 8,16; 1,8)        (16-port 2-tree)
//! * `b` — XGFT(3; 8,8,16; 1,8,8)    (16-port 3-tree)
//! * `c` — XGFT(2; 12,24; 1,12)      (24-port 2-tree)
//! * `d` — XGFT(3; 12,12,24; 1,12,12) (24-port 3-tree)
//!
//! Usage: `fig4 [a|b|c|d ...] [--quick] [--ablation] [--json PATH]`
//! (no panel argument runs all four).

#![forbid(unsafe_code)]

use lmpr_bench::{heuristics_at, k_ladder, topology_by_name, write_json, CommonArgs, Record};
use lmpr_core::{Router, RouterKind};
use lmpr_flowsim::{average_over_seeds, PermutationStudy, StudyConfig};
use xgft::Topology;

/// Seeds over which the random heuristic is averaged (the paper uses
/// five).
const RANDOM_SEEDS: [u64; 5] = [11, 23, 37, 41, 53];

fn study_config(quick: bool) -> StudyConfig {
    if quick {
        StudyConfig {
            initial_samples: 24,
            max_samples: 96,
            rel_half_width: 0.05,
            ..StudyConfig::default()
        }
    } else {
        StudyConfig::default()
    }
}

fn run_panel(
    panel: &str,
    label: &str,
    topo: &Topology,
    quick: bool,
    ablation: bool,
    records: &mut Vec<Record>,
) {
    let cfg = study_config(quick);
    let max_paths = topo.w_prod(topo.height());
    let ladder = k_ladder(max_paths);
    println!(
        "\nFigure 4({panel}) — {label}, N = {}, max paths = {max_paths}",
        topo.num_pns()
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}{}",
        "K",
        "d-mod-k",
        "shift-1",
        "disjoint",
        "random",
        if ablation {
            format!("{:>12}", "dj-stride")
        } else {
            String::new()
        }
    );

    let study = PermutationStudy::new(topo.clone(), cfg);
    let dmodk = study.run(&RouterKind::DModK);
    let emit = |scheme: &str, k: u64, mean: f64, hw: f64, records: &mut Vec<Record>| {
        records.push(Record {
            experiment: format!("fig4{panel}"),
            topology: label.to_owned(),
            scheme: scheme.to_owned(),
            k,
            x: k as f64,
            y: mean,
            aux: Some(hw),
        });
    };
    emit("d-mod-k", 1, dmodk.mean, dmodk.half_width, records);

    for &k in &ladder {
        let shift = study.run(&RouterKind::ShiftOne(k));
        let disjoint = study.run(&RouterKind::Disjoint(k));
        let random = average_over_seeds(topo, RouterKind::RandomK(k, 0), &RANDOM_SEEDS, cfg);
        emit(
            &RouterKind::ShiftOne(k).name(),
            k,
            shift.mean,
            shift.half_width,
            records,
        );
        emit(
            &RouterKind::Disjoint(k).name(),
            k,
            disjoint.mean,
            disjoint.half_width,
            records,
        );
        emit(
            &RouterKind::RandomK(k, 0).name(),
            k,
            random.mean,
            random.half_width,
            records,
        );
        let stride = ablation.then(|| study.run(&RouterKind::DisjointStride(k)));
        if let Some(s) = &stride {
            emit(
                &RouterKind::DisjointStride(k).name(),
                k,
                s.mean,
                s.half_width,
                records,
            );
        }
        println!(
            "{:>5} {:>12.3} {:>12.3} {:>12.3} {:>12.3}{}",
            k,
            dmodk.mean,
            shift.mean,
            disjoint.mean,
            random.mean,
            stride.map_or(String::new(), |s| format!(" {:>11.3}", s.mean))
        );
    }

    // UMULTI reference line (optimal for every TM — Theorem 1).
    let umulti = study.run(&RouterKind::Umulti);
    emit("umulti", max_paths, umulti.mean, umulti.half_width, records);
    println!(
        "{:>5} {:>12} {:>12.3} (umulti = optimal)",
        "opt", "", umulti.mean
    );
}

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fig4: {e}");
            std::process::exit(2);
        }
    };
    let ablation = args.positional.iter().any(|p| p == "ablation");
    let panels: Vec<String> = {
        let named: Vec<String> = args
            .positional
            .iter()
            .filter(|p| ["a", "b", "c", "d"].contains(&p.as_str()))
            .cloned()
            .collect();
        if named.is_empty() {
            ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect()
        } else {
            named
        }
    };
    let mut records = Vec::new();
    for panel in &panels {
        let (label, topo) = topology_by_name(panel).expect("panel name checked above");
        run_panel(panel, &label, &topo, args.quick, ablation, &mut records);
    }
    // Keep the heuristics list wired into the binary so the set stays in
    // sync with Table 1's.
    debug_assert_eq!(heuristics_at(2, 0).len(), 3);
    if let Some(path) = args.json {
        write_json(&path, &records).expect("writing results JSON");
        println!("\nwrote {} records", records.len());
    }
}
