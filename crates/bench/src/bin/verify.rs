//! E12 — static routing-correctness certification.
//!
//! Runs the `lmpr-verify` analyzer (channel-dependency-graph deadlock
//! proof, exact-K coverage audit, disjointness and load-bound
//! cross-checks) over a topology × scheme grid and prints one
//! certificate line per report, plus the structured JSON diagnostics.
//! Exits 0 only when every report certifies.
//!
//! Usage:
//!   `verify TOPOLOGY SCHEME... [--faults RATE:SEED] [--json PATH]`
//!   `verify --ci [--json PATH]`
//!   `verify --demo-cycle`
//!
//! `TOPOLOGY` is a §5 name (`a`…`d`, `8port2tree`, …) or one of the
//! verification fixtures `fig3` (XGFT(3; 4,4,4; 1,2,4)), `asym`
//! (XGFT(3; 3,2,2; 2,2,3)) and `fat16` (XGFT(2; 4,16; 2,2)).
//! `SCHEME` is a router spec accepted by `RouterKind::parse`
//! (`dmodk`, `shift1:K`, `disjoint:K`, `random:K[:seed]`, `umulti`) or
//! an LFT realization `lft-top:K` / `lft-bottom:K`, which is audited
//! against its shift-vector specification instead of the router.
//!
//! `--ci` runs the acceptance matrix: all four heuristics at
//! K ∈ {1, 2, X} on the three fixtures, both LFT slot orders, one
//! degraded-mode fault sample, and the snapshot-subsystem certificates
//! (`SNAP-ROUNDTRIP`, `SNAP-REJECT`, `SNAP-RESUME`) — the gate wired
//! into `ci.sh`.
//! `--demo-cycle` feeds the analyzer a deliberately cyclic (valley
//! routed) dependency fixture and shows the minimal counterexample.

#![forbid(unsafe_code)]

use lmpr_bench::topology_by_name;
use lmpr_core::forwarding::SlotOrder;
use lmpr_core::RouterKind;
use lmpr_verify::{verify_router_kind, verify_tables, Cdg, Report, RuleId};
use xgft::{FaultSet, Topology, XgftSpec};

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("verify: {e}");
            std::process::exit(2);
        }
    }
}

/// Parsed command line.
struct Args {
    positional: Vec<String>,
    faults: Option<(f64, u64)>,
    json: Option<String>,
    ci: bool,
    demo_cycle: bool,
}

fn parse_args(args: Vec<String>) -> Result<Args, String> {
    let mut out = Args {
        positional: Vec::new(),
        faults: None,
        json: None,
        ci: false,
        demo_cycle: false,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                let spec = it.next().ok_or("--faults needs RATE:SEED")?;
                let (rate, seed) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--faults {spec}: expected RATE:SEED"))?;
                let rate: f64 = rate
                    .parse()
                    .map_err(|e| format!("bad fault rate in {spec}: {e}"))?;
                let seed: u64 = seed
                    .parse()
                    .map_err(|e| format!("bad fault seed in {spec}: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("fault rate {rate} outside [0, 1]"));
                }
                out.faults = Some((rate, seed));
            }
            "--json" => out.json = Some(it.next().ok_or("--json needs a path")?),
            "--ci" => out.ci = true,
            "--demo-cycle" => out.demo_cycle = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            _ => out.positional.push(a),
        }
    }
    Ok(out)
}

/// Returns `Ok(true)` when every produced report certifies.
fn run(raw: Vec<String>) -> Result<bool, String> {
    let args = parse_args(raw)?;
    if args.demo_cycle {
        let report = demo_cycle_report();
        print_report(&report);
        println!("{}", report.to_json());
        return Ok(report.certified());
    }

    let reports = if args.ci {
        ci_matrix()?
    } else {
        let name = args
            .positional
            .first()
            .ok_or("usage: verify TOPOLOGY SCHEME... (or --ci / --demo-cycle)")?;
        let (label, topo) =
            fixture_by_name(name).ok_or_else(|| format!("unknown topology {name}"))?;
        if args.positional.len() < 2 {
            return Err("at least one SCHEME is required".to_owned());
        }
        let faults = args
            .faults
            .map(|(rate, seed)| FaultSet::sample(&topo, rate, 0.0, seed));
        let mut reports = Vec::new();
        for spec in &args.positional[1..] {
            reports.push(report_for_spec(&topo, &label, spec, faults.as_ref())?);
        }
        reports
    };

    for r in &reports {
        print_report(r);
    }
    let certified = reports.iter().filter(|r| r.certified()).count();
    println!(
        "\n{certified}/{} reports certified, {} finding(s) total",
        reports.len(),
        reports.iter().map(|r| r.findings.len()).sum::<usize>()
    );

    let json = reports_to_json(&reports);
    match &args.json {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {} reports to {path}", reports.len());
        }
        None => println!("{json}"),
    }
    Ok(certified == reports.len())
}

/// Resolve a topology name: the §5 set plus the verification fixtures.
fn fixture_by_name(name: &str) -> Option<(String, Topology)> {
    let spec = match name {
        "fig3" => XgftSpec::new(&[4, 4, 4], &[1, 2, 4]),
        "asym" => XgftSpec::new(&[3, 2, 2], &[2, 2, 3]),
        "fat16" => XgftSpec::new(&[4, 16], &[2, 2]),
        other => return topology_by_name(other),
    }
    .expect("fixture specs are valid");
    Some((spec.to_string(), Topology::new(spec)))
}

/// One report for one scheme spec, dispatching LFT audits.
fn report_for_spec(
    topo: &Topology,
    label: &str,
    spec: &str,
    faults: Option<&FaultSet>,
) -> Result<Report, String> {
    if let Some(rest) = spec.strip_prefix("lft-top:") {
        let k = parse_k(spec, rest)?;
        return Ok(verify_tables(topo, label, k, SlotOrder::TopFirst));
    }
    if let Some(rest) = spec.strip_prefix("lft-bottom:") {
        let k = parse_k(spec, rest)?;
        return Ok(verify_tables(topo, label, k, SlotOrder::BottomFirst));
    }
    let kind = RouterKind::parse(spec)?;
    Ok(verify_router_kind(topo, label, kind, faults))
}

fn parse_k(spec: &str, rest: &str) -> Result<u64, String> {
    rest.parse::<u64>()
        .map_err(|e| format!("bad K in {spec}: {e}"))
}

/// The acceptance matrix run by `ci.sh`: every heuristic at
/// K ∈ {1, 2, X} on all three fixtures, both LFT slot orders on the
/// fig-3 tree, and a degraded-mode sample on fig3 and asym.
fn ci_matrix() -> Result<Vec<Report>, String> {
    let mut reports = Vec::new();
    for name in ["fig3", "asym", "fat16"] {
        let (label, topo) = fixture_by_name(name).expect("fixture");
        let x = topo.w_prod(topo.height());
        for k in [1, 2, x] {
            for kind in [
                RouterKind::ShiftOne(k),
                RouterKind::Disjoint(k),
                RouterKind::RandomK(k, 42),
            ] {
                reports.push(verify_router_kind(&topo, &label, kind, None));
            }
        }
        reports.push(verify_router_kind(&topo, &label, RouterKind::DModK, None));
    }
    let (label, topo) = fixture_by_name("fig3").expect("fixture");
    for order in [SlotOrder::TopFirst, SlotOrder::BottomFirst] {
        for k in [1, 2, 4] {
            reports.push(verify_tables(&topo, &label, k, order));
        }
    }
    for name in ["fig3", "asym"] {
        let (label, topo) = fixture_by_name(name).expect("fixture");
        let faults = FaultSet::sample(&topo, 0.05, 0.0, 9);
        reports.push(verify_router_kind(
            &topo,
            &label,
            RouterKind::Disjoint(2),
            Some(&faults),
        ));
    }
    // The snapshot-subsystem certificates (SNAP-ROUNDTRIP, SNAP-REJECT,
    // SNAP-RESUME): round-trip state equality, corruption/version
    // rejection witnesses, and the resume-equivalence proof.
    reports.extend(lmpr_bench::snapcheck::snapshot_reports());
    Ok(reports)
}

/// A deliberately cyclic fixture: a valley route (down before up)
/// injected next to a legitimate up/down route, producing the classic
/// two-channel deadlock dependency the analyzer must refute.
fn demo_cycle_report() -> Report {
    let topo = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).expect("valid spec"));
    let mut cdg = Cdg::new(&topo);
    let up = topo.up_link(1, 0, 0);
    let down = topo.down_link(1, 0, 1);
    cdg.add_route(&[up, down]);
    cdg.add_route(&[down, up]); // the valley: descend, then re-climb
    let mut report = Report::new("XGFT(2; 2,2; 1,2)", "valley-fixture");
    let before = report.findings.len();
    if let Some(diag) = cdg.deadlock_finding(&topo) {
        report.findings.push(diag);
    }
    report.record(RuleId::CdgCycle, cdg.num_edges(), before);
    report
}

fn print_report(r: &Report) {
    let verdict = if r.certified() {
        "CERTIFIED"
    } else {
        "REFUTED"
    };
    let inspected: u64 = r.checks.iter().map(|c| c.inspected).sum();
    println!(
        "{verdict:>9}  {:<24} {:<20} {} check(s), {} item(s), {} finding(s)",
        r.topology,
        r.scheme,
        r.checks.len(),
        inspected,
        r.findings.len()
    );
    for d in &r.findings {
        println!("           {d}");
    }
}

/// Join per-report JSON objects into one array (each report already
/// renders itself with 2-space indentation).
fn reports_to_json(reports: &[Report]) -> String {
    if reports.is_empty() {
        return "[]".to_owned();
    }
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        let body = r.to_json();
        for line in body.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        if i + 1 < reports.len() {
            // replace the trailing newline after `}` with `,\n`
            out.pop();
            out.push_str(",\n");
        }
    }
    out.push(']');
    out
}
