//! Table 1 — saturation throughput under uniform random traffic.
//!
//! Flit-level simulation on XGFT(3; 4,4,8; 1,4,4) (the 8-port 3-tree of
//! §5): for each routing scheme and path budget, sweep the offered load
//! and report the maximum accepted throughput (in percent of injection
//! bandwidth), the paper's Table 1 metric.
//!
//! Usage: `table1 [--quick] [--json PATH] [policy]`
//! (`policy` runs the path-selection-policy ablation instead of the
//! main table).

#![forbid(unsafe_code)]

use lmpr_bench::{write_json, CommonArgs, Record};
use lmpr_core::{RandomK, Router, RouterKind};
use lmpr_flitsim::sweep::{load_grid, run_sweep};
use lmpr_flitsim::{saturation_throughput, PathPolicy, SimConfig};
use xgft::{Topology, XgftSpec};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("table1: {e}");
            std::process::exit(2);
        }
    };
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    let label = topo.spec().to_string();
    let cfg = if args.quick {
        SimConfig {
            warmup_cycles: 3_000,
            measure_cycles: 8_000,
            ..SimConfig::default()
        }
    } else {
        SimConfig::default()
    };
    let loads: Vec<f64> = if args.quick {
        vec![0.55, 0.65, 0.7, 0.75, 0.85]
    } else {
        load_grid(0.05)
    };
    let mut records = Vec::new();

    if args.positional.iter().any(|p| p == "policy") {
        policy_ablation(&topo, &label, cfg, &loads, &mut records);
    } else {
        main_table(&topo, &label, cfg, &loads, &mut records);
    }

    if let Some(path) = args.json {
        write_json(&path, &records).expect("writing results JSON");
        println!("\nwrote {} records", records.len());
    }
}

fn saturation(topo: &Topology, r: &RouterKind, cfg: SimConfig, loads: &[f64]) -> f64 {
    let points = run_sweep(topo, r, cfg, loads, 0).expect("sweep runs");
    saturation_throughput(&points)
}

fn main_table(
    topo: &Topology,
    label: &str,
    cfg: SimConfig,
    loads: &[f64],
    records: &mut Vec<Record>,
) {
    println!("Table 1 — maximum throughput (% of injection bandwidth)");
    println!("uniform random traffic, {label}, VCT, 1 VC, round-robin path policy\n");
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10}",
        "Num-Path", "d-mod-k", "shift-1", "random", "disjoint"
    );
    let dmodk = saturation(topo, &RouterKind::DModK, cfg, loads);
    records.push(Record {
        experiment: "table1".into(),
        topology: label.into(),
        scheme: "d-mod-k".into(),
        k: 1,
        x: 1.0,
        y: dmodk * 100.0,
        aux: None,
    });
    for k in [2u64, 4, 8, 16] {
        let shift = saturation(topo, &RouterKind::ShiftOne(k), cfg, loads);
        // Random averaged over the paper's five seeds.
        let random: f64 = [11u64, 23, 37, 41, 53]
            .iter()
            .map(|&s| saturation(topo, &RouterKind::RandomK(k, s), cfg, loads))
            .sum::<f64>()
            / 5.0;
        let disjoint = saturation(topo, &RouterKind::Disjoint(k), cfg, loads);
        for (scheme, v) in [
            (RouterKind::ShiftOne(k).name(), shift),
            (RandomK::new(k, 0).name(), random),
            (RouterKind::Disjoint(k).name(), disjoint),
        ] {
            records.push(Record {
                experiment: "table1".into(),
                topology: label.into(),
                scheme,
                k,
                x: k as f64,
                y: v * 100.0,
                aux: None,
            });
        }
        println!(
            "{:>9} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            k,
            dmodk * 100.0,
            shift * 100.0,
            random * 100.0,
            disjoint * 100.0
        );
    }
}

fn policy_ablation(
    topo: &Topology,
    label: &str,
    cfg: SimConfig,
    loads: &[f64],
    records: &mut Vec<Record>,
) {
    println!("Ablation — path-selection policy, disjoint(8), {label}\n");
    println!("{:>18} {:>12}", "policy", "max thpt");
    for (name, policy) in [
        ("round-robin", PathPolicy::RoundRobin),
        ("per-packet-rand", PathPolicy::PerPacketRandom),
        ("per-message-rand", PathPolicy::PerMessageRandom),
    ] {
        let cfg = SimConfig {
            path_policy: policy,
            ..cfg
        };
        let v = saturation(topo, &RouterKind::Disjoint(8), cfg, loads);
        records.push(Record {
            experiment: "table1-policy".into(),
            topology: label.into(),
            scheme: format!("disjoint(8)/{name}"),
            k: 8,
            x: 8.0,
            y: v * 100.0,
            aux: None,
        });
        println!("{:>18} {:>11.2}%", name, v * 100.0);
    }
}
