//! Executable checks of the paper's analytical results.
//!
//! * **Theorem 1** — `PERF(UMULTI) = 1`: on a battery of topologies and
//!   traffic matrices, UMULTI's maximum link load equals the sub-tree
//!   cut lower bound `ML(TM)`.
//! * **Theorem 2** — there are XGFTs where `PERF(d-mod-k) ≥ Π w_i`: the
//!   adversarial concentration pattern realizes the bound exactly.
//! * **LID budget** — the InfiniBand motivation for *limited*
//!   multi-path routing: which budgets `K` are realizable per topology.
//!
//! Usage: `theorems [--json PATH]`

#![forbid(unsafe_code)]

use lmpr_bench::{write_json, CommonArgs, Record};
use lmpr_core::{lid, DModK, Router, Umulti};
use lmpr_flowsim::{ml_lower_bound, performance_ratio, LinkLoads};
use lmpr_traffic::{adversarial_concentration, random_permutation, TrafficMatrix};
use xgft::{Topology, XgftSpec};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("theorems: {e}");
            std::process::exit(2);
        }
    };
    let mut records = Vec::new();

    println!("Theorem 1 — PERF(UMULTI) = 1 (max |ratio - 1| over sampled TMs)");
    for spec in [
        XgftSpec::m_port_n_tree(8, 2).unwrap(),
        XgftSpec::m_port_n_tree(8, 3).unwrap(),
        XgftSpec::new(&[3, 4, 5], &[2, 3, 2]).unwrap(),
        XgftSpec::new(&[4, 16], &[2, 2]).unwrap(),
    ] {
        let topo = Topology::new(spec);
        let label = topo.spec().to_string();
        let mut worst: f64 = 0.0;
        for seed in 0..20u64 {
            let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
            worst = worst.max((performance_ratio(&topo, &Umulti, &tm) - 1.0).abs());
        }
        if let Some(p) = adversarial_concentration(&topo) {
            worst = worst.max((performance_ratio(&topo, &Umulti, &p.tm) - 1.0).abs());
        }
        println!("  {label:34} max deviation = {worst:.2e}");
        records.push(Record {
            experiment: "theorem1".into(),
            topology: label,
            scheme: "umulti".into(),
            k: 0,
            x: 0.0,
            y: worst,
            aux: None,
        });
    }

    println!("\nTheorem 2 — adversarial concentration pattern");
    println!(
        "  {:34} {:>10} {:>10} {:>10} {:>8}",
        "topology", "MLOAD(dmk)", "ML bound", "PERF(dmk)", "Π w_i"
    );
    for spec in [
        XgftSpec::new(&[4, 16], &[2, 2]).unwrap(),
        XgftSpec::new(&[2, 2, 32], &[1, 2, 2]).unwrap(),
        XgftSpec::new(&[4, 4, 64], &[2, 2, 2]).unwrap(),
    ] {
        let topo = Topology::new(spec);
        let label = topo.spec().to_string();
        let p = adversarial_concentration(&topo)
            .expect("theorem topologies are wide enough for the pattern");
        let mload = LinkLoads::accumulate(&topo, &DModK, &p.tm).max_load();
        let ml = ml_lower_bound(&topo, &p.tm);
        let ratio = performance_ratio(&topo, &DModK, &p.tm);
        let w_prod = topo.w_prod(topo.height()) as f64;
        assert!(
            (ratio - w_prod).abs() < 1e-9,
            "the pattern must realize the bound"
        );
        println!("  {label:34} {mload:>10.1} {ml:>10.2} {ratio:>10.1} {w_prod:>8.0}");
        records.push(Record {
            experiment: "theorem2".into(),
            topology: label,
            scheme: "d-mod-k".into(),
            k: 1,
            x: w_prod,
            y: ratio,
            aux: Some(ml),
        });
    }

    println!(
        "\nLID budget — InfiniBand realizability (unicast LID space = {})",
        lid::UNICAST_LIDS
    );
    println!(
        "  {:34} {:>8} {:>10} {:>12} {:>8}",
        "topology", "paths", "max K", "LIDs@K=16", "umulti?"
    );
    for (m, n) in [(8u32, 2usize), (8, 3), (16, 3), (24, 3)] {
        let topo = Topology::new(XgftSpec::m_port_n_tree(m, n).unwrap());
        let label = topo.spec().to_string();
        let paths = topo.w_prod(topo.height());
        let max_k = lid::max_realizable_budget(&topo);
        let lids16 = lid::lids_required(&topo, 16).map_or("n/a".to_owned(), |v| v.to_string());
        let um = lid::umulti_realizable(&topo);
        println!("  {label:34} {paths:>8} {max_k:>10} {lids16:>12} {um:>8}");
        records.push(Record {
            experiment: "lid-budget".into(),
            topology: label,
            scheme: "-".into(),
            k: max_k,
            x: paths as f64,
            y: max_k as f64,
            aux: Some(if um { 1.0 } else { 0.0 }),
        });
    }
    println!("\n(the 24-port 3-tree cannot realize UMULTI — the paper's motivation)");

    let _ = DModK.name();
    if let Some(path) = args.json {
        write_json(&path, &records).expect("writing results JSON");
        println!("\nwrote {} records", records.len());
    }
}
