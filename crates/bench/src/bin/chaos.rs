//! E13 — chaos harness CLI. The experiment bodies live in
//! [`lmpr_bench::chaos`] so the golden-equivalence test can run them
//! in-process; this binary only parses flags, serializes the document
//! and turns violations into the exit code.
//!
//! Usage: `chaos [--quick] [--json PATH]`
//!        `chaos --orchestrate DIR [--quick] [--json PATH]
//!               [--max-cells N] [--deadline-secs S]`
//!
//! With `--orchestrate`, the sweep runs under the supervised, resumable
//! [`SweepOrchestrator`]:
//! per-experiment progress is journaled in `DIR/journal.json`, long
//! simulations checkpoint their complete state, and re-running the same
//! command after a crash (or SIGKILL) resumes from the journal and
//! produces a document byte-identical to an uninterrupted run. The
//! document is only written/printed once every cell completed.

#![forbid(unsafe_code)]

use lmpr_bench::orchestrator::{OrchestratorOptions, SweepOrchestrator};
use lmpr_bench::{chaos, document_to_json, write_document, CommonArgs};
use std::time::Duration;

struct Cli {
    common: CommonArgs,
    orchestrate: Option<String>,
    max_cells: Option<usize>,
    deadline_secs: Option<u64>,
}

fn parse_cli(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut rest = Vec::new();
    let mut orchestrate = None;
    let mut max_cells = None;
    let mut deadline_secs = None;
    let mut it = args;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--orchestrate" => orchestrate = Some(value("--orchestrate")?),
            "--max-cells" => {
                max_cells = Some(
                    value("--max-cells")?
                        .parse()
                        .map_err(|e| format!("--max-cells: {e}"))?,
                )
            }
            "--deadline-secs" => {
                deadline_secs = Some(
                    value("--deadline-secs")?
                        .parse()
                        .map_err(|e| format!("--deadline-secs: {e}"))?,
                )
            }
            _ => rest.push(a),
        }
    }
    if orchestrate.is_none() && (max_cells.is_some() || deadline_secs.is_some()) {
        return Err("--max-cells/--deadline-secs require --orchestrate".into());
    }
    Ok(Cli {
        common: CommonArgs::parse(rest.into_iter())?,
        orchestrate,
        max_cells,
        deadline_secs,
    })
}

fn main() {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };
    match &cli.orchestrate {
        Some(dir) => orchestrated(dir, &cli),
        None => inline(&cli.common),
    }
}

/// The classic single-process run: execute everything, print, exit.
fn inline(args: &CommonArgs) {
    let out = chaos::run(args.quick);
    match &args.json {
        Some(path) => {
            if let Err(e) = write_document(path, &out.records, &out.failures) {
                eprintln!("chaos: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "wrote {} records and {} failures to {path}",
                out.records.len(),
                out.failures.len()
            );
        }
        None => println!("{}", document_to_json(&out.records, &out.failures)),
    }
    if out.violations > 0 || !out.failures.is_empty() {
        eprintln!(
            "chaos: {} invariant violations, {} failed runs",
            out.violations,
            out.failures.len()
        );
        std::process::exit(1);
    }
}

/// The supervised run: journal + checkpoints + retries; the document
/// appears only once the whole grid completed.
fn orchestrated(dir: &str, cli: &Cli) {
    let mut opts = OrchestratorOptions::new(dir, cli.common.quick);
    opts.max_cells = cli.max_cells;
    if let Some(s) = cli.deadline_secs {
        opts.deadline = Duration::from_secs(s);
    }
    let mut orch = match SweepOrchestrator::new(opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos: cannot set up orchestrator in {dir}: {e}");
            std::process::exit(2);
        }
    };
    let report = match orch.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos: orchestrator I/O failure: {e}");
            std::process::exit(2);
        }
    };
    for e in &report.cell_errors {
        eprintln!("chaos: {e}");
    }
    if !report.completed {
        eprintln!(
            "chaos: sweep incomplete ({} cells processed this pass); re-run the same \
             command to resume from {dir}/journal.json",
            report.cells_run
        );
        std::process::exit(1);
    }
    let document = report.document.as_deref().unwrap_or("{}");
    match &cli.common.json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, document) {
                eprintln!("chaos: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote results document to {path}");
        }
        None => println!("{document}"),
    }
    if report.violations > 0 || report.failure_count > 0 {
        eprintln!(
            "chaos: {} invariant violations, {} failed runs",
            report.violations, report.failure_count
        );
        std::process::exit(1);
    }
}
