//! E13 — chaos harness CLI. The experiment bodies live in
//! [`lmpr_bench::chaos`] so the golden-equivalence test can run them
//! in-process; this binary only parses flags, serializes the document
//! and turns violations into the exit code.
//!
//! Usage: `chaos [--quick] [--json PATH]`

use lmpr_bench::{chaos, document_to_json, write_document, CommonArgs};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };
    let out = chaos::run(args.quick);
    match &args.json {
        Some(path) => {
            if let Err(e) = write_document(path, &out.records, &out.failures) {
                eprintln!("chaos: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "wrote {} records and {} failures to {path}",
                out.records.len(),
                out.failures.len()
            );
        }
        None => println!("{}", document_to_json(&out.records, &out.failures)),
    }
    if out.violations > 0 || !out.failures.is_empty() {
        eprintln!(
            "chaos: {} invariant violations, {} failed runs",
            out.violations,
            out.failures.len()
        );
        std::process::exit(1);
    }
}
