//! Machine-readable performance baselines for the two simulators.
//!
//! Writes `BENCH_flitsim.json` and `BENCH_flowsim.json` (into the
//! current directory, or a directory given as the first positional
//! argument) with the headline performance numbers of each stack:
//!
//! * **flitsim** — simulated cycles per wall-clock second for a plain
//!   run and for a resilience-enabled run under Poisson link churn, the
//!   selection-cache hit rate of the churn run, and the wall time of a
//!   threaded offered-load sweep.
//! * **flowsim** — flows routed per second through the degraded-mode
//!   path (the shared [`SelectionEngine`]),
//!   the cache hit rate of a warm second routing pass over the same
//!   traffic matrix, and the wall time of a Figure-4-style
//!   heuristic × budget load sweep.
//!
//! Wall-clock numbers vary with the machine; the committed baselines
//! document the reference environment and make regressions reviewable.
//! Regenerate with `cargo run --release -p lmpr-bench --bin
//! perf_baseline` from the repository root.
//!
//! Usage: `perf_baseline [--quick] [DIR]`

#![forbid(unsafe_code)]

use lmpr_bench::{failure_to_json, json_f64, json_string, CommonArgs, Failure};
use lmpr_core::{Disjoint, RouterKind, SelectionEngine};
use lmpr_flitsim::{
    run_sweep, FaultPolicy, FlitSim, ResilienceConfig, RetxConfig, SimConfig, SweepError,
    TrafficMode,
};
use lmpr_flowsim::{DegradedLoads, LinkLoads};
use lmpr_traffic::{random_permutation, TrafficMatrix};
use std::time::Instant;
use xgft::{FaultSchedule, FaultSet, PathId, Topology, XgftSpec};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            std::process::exit(2);
        }
    };
    let dir = args.positional.first().map_or(".", String::as_str);
    // A baseline run that errors (deadlock, invalid config) becomes a
    // structured failure record and a non-zero exit — never a panic,
    // and never a silently truncated baseline file.
    let flit = flitsim_baseline(args.quick);
    let flow = flowsim_baseline(args.quick);
    let mut failed = false;
    for (name, result) in [("BENCH_flitsim.json", flit), ("BENCH_flowsim.json", flow)] {
        let doc = match result {
            Ok(doc) => doc,
            Err(f) => {
                failed = true;
                eprintln!("perf_baseline: {} failed: {}", f.experiment, f.error);
                format!("{{\n  \"failures\": [\n{}\n  ]\n}}\n", failure_to_json(&f))
            }
        };
        let path = format!("{dir}/{name}");
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("perf_baseline: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    if failed {
        std::process::exit(1);
    }
}

/// Render one baseline document: a flat object of named metrics.
fn render(benchmark: &str, topology: &str, quick: bool, metrics: &[(&str, f64)]) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": {},\n  \"topology\": {},\n  \"quick\": {quick},\n  \"metrics\": {{",
        json_string(benchmark),
        json_string(topology)
    );
    for (i, (name, value)) in metrics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {}: {}", json_string(name), json_f64(*value)));
    }
    out.push_str("\n  }\n}");
    out
}

/// Cycle-rate, cache and sweep baselines of the flit-level simulator.
fn flitsim_baseline(quick: bool) -> Result<String, Box<Failure>> {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    let label = topo.spec().to_string();
    let fail = |error| {
        Box::new(Failure {
            experiment: "perf-flitsim".into(),
            topology: label.clone(),
            scheme: "disjoint(4)".into(),
            k: 4,
            x: 0.0,
            seed: 0,
            error,
        })
    };
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: if quick { 4_000 } else { 10_000 },
        offered_load: 0.4,
        ..SimConfig::default()
    };
    let cycles = cfg.horizon() as f64;

    let mut sim = FlitSim::new(&topo, Disjoint::new(4), cfg).map_err(fail)?;
    let t0 = Instant::now();
    sim.run().map_err(fail)?;
    let plain_cps = cycles / t0.elapsed().as_secs_f64();

    // The churn run measures the selection cache, so it must be long
    // enough to leave the cold-start regime: uniform traffic over
    // 16 256 SD pairs needs tens of thousands of cycles before repeat
    // queries (the thing a cache can serve) outnumber first-time
    // queries (which no cache policy can).
    let churn_cfg = SimConfig {
        measure_cycles: if quick { 4_000 } else { 60_000 },
        ..cfg
    };
    let schedule = FaultSchedule::poisson(&topo, 5e-5, 1_500.0, churn_cfg.horizon(), 7);
    let res = ResilienceConfig {
        detect_cycles: 50,
        reconverge_cycles: 150,
        retx: Some(RetxConfig::default()),
    };
    let mut sim = FlitSim::with_schedule(
        &topo,
        Disjoint::new(4),
        churn_cfg,
        TrafficMode::Uniform,
        schedule,
        FaultPolicy::Drop,
        res,
    )
    .map_err(fail)?;
    let t0 = Instant::now();
    sim.run().map_err(fail)?;
    let resilient_cps = churn_cfg.horizon() as f64 / t0.elapsed().as_secs_f64();
    let hit_rate = sim.selection_stats().hit_rate();

    let sweep_cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: if quick { 2_000 } else { 5_000 },
        ..SimConfig::default()
    };
    let loads: &[f64] = if quick {
        &[0.3, 0.6]
    } else {
        &[0.2, 0.4, 0.6, 0.8]
    };
    let t0 = Instant::now();
    run_sweep(&topo, &Disjoint::new(4), sweep_cfg, loads, 0).map_err(|e| match e {
        SweepError::Sim { source, .. } => fail(source),
        // Worker panics and missing results are harness defects, not
        // typed simulator outcomes — they have no Failure encoding.
        other => {
            eprintln!("perf_baseline: sweep harness error: {other}");
            std::process::exit(2);
        }
    })?;
    let sweep_secs = t0.elapsed().as_secs_f64();

    Ok(render(
        "flitsim",
        &label,
        quick,
        &[
            ("plain_cycles_per_sec", plain_cps),
            ("resilient_cycles_per_sec", resilient_cps),
            ("selection_cache_hit_rate", hit_rate),
            ("sweep_wall_time_sec", sweep_secs),
        ],
    ))
}

/// Routing-rate, cache and sweep baselines of the flow-level stack
/// (infallible today; the `Result` keeps both baselines uniform).
fn flowsim_baseline(quick: bool) -> Result<String, Box<Failure>> {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    let label = topo.spec().to_string();
    let tm = TrafficMatrix::uniform(topo.num_pns(), 1.0);
    let flows = tm.flows().len() as f64;
    let faults = FaultSet::sample(&topo, 0.01, 0.0, 0);
    let router = Disjoint::new(4);

    let reps = if quick { 2 } else { 5 };
    let t0 = Instant::now();
    for _ in 0..reps {
        DegradedLoads::accumulate(&topo, &router, &tm, &faults);
    }
    let degraded_fps = reps as f64 * flows / t0.elapsed().as_secs_f64();

    // Warm-pass hit rate: route the same matrix twice through one
    // cached engine under an unchanged fault view — the second pass is
    // all cache hits, so the rate lands at the fraction of repeated
    // lookups (1/2 here) and drops if caching regresses.
    let mut engine = SelectionEngine::cached(&router, faults.clone());
    let mut paths: Vec<PathId> = Vec::new();
    for _ in 0..2 {
        for f in tm.flows() {
            let _ = engine.try_select(&topo, f.src, f.dst, &mut paths);
        }
    }
    let hit_rate = engine.stats().hit_rate();

    // Figure-4-style sweep: heuristic × budget grid over seeded random
    // permutations, fault-free.
    let perms = if quick { 2 } else { 5 };
    let ks: &[u64] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let t0 = Instant::now();
    for seed in 0..perms {
        let ptm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
        for &k in ks {
            for r in [
                RouterKind::ShiftOne(k),
                RouterKind::Disjoint(k),
                RouterKind::RandomK(k, 11),
            ] {
                LinkLoads::accumulate(&topo, &r, &ptm);
            }
        }
    }
    let sweep_secs = t0.elapsed().as_secs_f64();

    Ok(render(
        "flowsim",
        &label,
        quick,
        &[
            ("degraded_flows_per_sec", degraded_fps),
            ("selection_cache_hit_rate", hit_rate),
            ("sweep_wall_time_sec", sweep_secs),
        ],
    ))
}
