//! E11 — degraded-mode routing CLI. The experiment body lives in
//! [`lmpr_bench::faults`] so the golden-equivalence test can run it
//! in-process; this binary only parses flags and serializes the
//! document.
//!
//! Usage: `faults [--quick] [--json PATH]`
//! (without `--json` the document is printed as JSON after the table).

#![forbid(unsafe_code)]

use lmpr_bench::{document_to_json, faults, write_document, CommonArgs};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("faults: {e}");
            std::process::exit(2);
        }
    };
    let out = faults::run(args.quick);
    match args.json {
        Some(path) => {
            if let Err(e) = write_document(&path, &out.records, &out.failures) {
                eprintln!("faults: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "wrote {} records and {} failures to {path}",
                out.records.len(),
                out.failures.len()
            );
        }
        None => println!("{}", document_to_json(&out.records, &out.failures)),
    }
    if !out.failures.is_empty() {
        eprintln!("faults: {} failed replays", out.failures.len());
        std::process::exit(1);
    }
}
