//! E11 — degraded-mode routing under random link failures.
//!
//! Flow-level evaluation on XGFT(3; 4,4,8; 1,4,4) (the 8-port 3-tree of
//! §5): sample random link-failure sets at several failure rates, route
//! uniform all-to-all traffic through the fault-aware adapter and
//! report, per heuristic and path budget, the degraded maximum link
//! load and the probability that an SD pair loses connectivity.
//!
//! Usage: `faults [--quick] [--json PATH]`
//! (without `--json` the records are printed as JSON after the table).

use lmpr_bench::{records_to_json, write_json, CommonArgs, Record};
use lmpr_core::{Router, RouterKind};
use lmpr_flowsim::DegradedLoads;
use lmpr_traffic::TrafficMatrix;
use xgft::{FaultSet, Topology, XgftSpec};

/// Seed for the random-K heuristic (a Table-1 seed, unrelated to the
/// fault-sampling seeds).
const RANDOM_K_SEED: u64 = 11;

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("faults: {e}");
            std::process::exit(2);
        }
    };
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    let label = topo.spec().to_string();
    let tm = TrafficMatrix::uniform(topo.num_pns(), 1.0);
    let fault_seeds: u64 = if args.quick { 3 } else { 10 };
    let rates = [0.0, 0.01, 0.05];

    println!("E11 — degraded-mode routing under random link failures");
    println!(
        "{label}, uniform all-to-all, {} links, {} fault samples per rate\n",
        topo.num_links(),
        fault_seeds
    );
    println!(
        "{:>6} {:>16} {:>3} {:>14} {:>16}",
        "rate", "scheme", "K", "max load", "P(disconnect)"
    );

    let mut records = Vec::new();
    for rate in rates {
        for (router, k) in schemes() {
            let (mut load_sum, mut disc_sum) = (0.0f64, 0.0f64);
            for seed in 0..fault_seeds {
                let faults = FaultSet::sample(&topo, rate, 0.0, seed);
                let d = DegradedLoads::accumulate(&topo, &router, &tm, &faults);
                load_sum += d.max_load();
                disc_sum += d.disconnection_rate();
            }
            let max_load = load_sum / fault_seeds as f64;
            let p_disc = disc_sum / fault_seeds as f64;
            println!(
                "{:>5.0}% {:>16} {:>3} {:>14.2} {:>16.4}",
                rate * 100.0,
                router.name(),
                k,
                max_load,
                p_disc
            );
            records.push(Record {
                experiment: "faults".into(),
                topology: label.clone(),
                scheme: router.name(),
                k,
                x: rate,
                y: max_load,
                aux: Some(p_disc),
            });
        }
        println!();
    }

    match args.json {
        Some(path) => {
            if let Err(e) = write_json(&path, &records) {
                eprintln!("faults: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote {} records to {path}", records.len());
        }
        None => println!("{}", records_to_json(&records)),
    }
}

/// The sweep's heuristic × budget grid: d-mod-k (single-path baseline)
/// plus shift-1, disjoint and random at K ∈ {1, 4, 8}.
fn schemes() -> Vec<(RouterKind, u64)> {
    let mut out = vec![(RouterKind::DModK, 1)];
    for k in [1u64, 4, 8] {
        out.push((RouterKind::ShiftOne(k), k));
        out.push((RouterKind::Disjoint(k), k));
        out.push((RouterKind::RandomK(k, RANDOM_K_SEED), k));
    }
    out
}
