//! Per-level contention breakdown — the §5 explanation experiment.
//!
//! The paper attributes the disjoint heuristic's advantage to *where*
//! the remaining contention sits: "link contention at lower level
//! switches \[is\] significant for the permutation traffic: disjoint and
//! random are able to distribute the load more evenly at lower level
//! than shift-1". This binary quantifies that claim: for each scheme at
//! a fixed K it reports the average maximum load and imbalance
//! (max/mean) per link class, averaged over random permutations.
//!
//! Usage: `levels [--quick] [--json PATH] [k]` (default K = 4).

#![forbid(unsafe_code)]

use lmpr_bench::{write_json, CommonArgs, Record};
use lmpr_core::{Router, RouterKind};
use lmpr_flowsim::{level_breakdown, LinkLoads};
use lmpr_traffic::{random_permutation, TrafficMatrix};
use xgft::{LinkDir, Topology, XgftSpec};

fn main() {
    let args = match CommonArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("levels: {e}");
            std::process::exit(2);
        }
    };
    let k: u64 = args
        .positional
        .first()
        .map_or(4, |s| s.parse().expect("K must be a number"));
    let samples = if args.quick { 20 } else { 200 };
    let topo = Topology::new(XgftSpec::m_port_n_tree(16, 3).expect("valid"));
    let label = topo.spec().to_string();
    println!("Per-level contention, {label}, K = {k}, {samples} permutations\n");

    let schemes = [
        RouterKind::DModK,
        RouterKind::ShiftOne(k),
        RouterKind::RandomK(k, 11),
        RouterKind::Disjoint(k),
    ];
    let h = topo.height();
    println!(
        "{:>12} {}",
        "scheme",
        (1..=h)
            .map(|l| format!("{:>10} {:>10}", format!("up{l} max"), format!("up{l} imb")))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut records = Vec::new();
    for scheme in &schemes {
        // Average per-class max and imbalance over the permutations.
        let mut max_acc = vec![0.0f64; h];
        let mut imb_acc = vec![0.0f64; h];
        let mut loads = LinkLoads::zero(&topo);
        for seed in 0..samples {
            let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
            loads.clear();
            loads.add(&topo, scheme, &tm);
            for c in level_breakdown(&topo, &loads) {
                if c.dir == LinkDir::Up {
                    max_acc[c.level as usize - 1] += c.max;
                    imb_acc[c.level as usize - 1] += c.imbalance();
                }
            }
        }
        print!("{:>12}", scheme.name());
        for l in 0..h {
            let max = max_acc[l] / samples as f64;
            let imb = imb_acc[l] / samples as f64;
            print!(" {max:>10.3} {imb:>10.3}");
            records.push(Record {
                experiment: "levels".into(),
                topology: label.clone(),
                scheme: scheme.name(),
                k,
                x: (l + 1) as f64,
                y: max,
                aux: Some(imb),
            });
        }
        println!();
    }
    println!(
        "\nReading: shift-1 only balances the top level (up{h}); disjoint pushes\n\
         the imbalance down at every level, which is why it wins Figure 4."
    );

    if let Some(path) = args.json {
        write_json(&path, &records).expect("writing results JSON");
        println!("wrote {} records", records.len());
    }
}
