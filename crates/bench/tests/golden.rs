//! Golden-equivalence tests: run the chaos and faults harnesses
//! in-process at the quick budget and byte-compare their serialized
//! documents against the committed `results/*_quick.json` files.
//!
//! These are the refactor tripwires for the routing/selection stack:
//! the documents embed every seeded simulation outcome (throughput,
//! latency percentiles, reconvergence lag, retransmit ratios, fault
//! replays), so any behavioral drift in the simulator, the
//! `SelectionEngine`, the fault schedules or the RNG consumption order
//! shows up as a byte diff. Regenerate deliberately with
//! `cargo run --release -p lmpr-bench --bin chaos -- --quick --json results/chaos_quick.json`
//! (resp. `faults`) and commit the new goldens alongside the change
//! that explains them.
//!
//! Marked `#[ignore]` because each takes tens of seconds unoptimized;
//! CI runs them in release via
//! `cargo test -q --release -p lmpr-bench --test golden -- --ignored`.

use lmpr_bench::{chaos, document_to_json, faults};

#[test]
#[ignore = "slow; CI runs it in release"]
fn chaos_quick_document_is_byte_identical_to_golden() {
    let out = chaos::run(true);
    assert_eq!(out.violations, 0, "chaos quick run tripped invariants");
    assert!(
        out.failures.is_empty(),
        "chaos quick run had failed runs: {:?}",
        out.failures
    );
    let golden = include_str!("../../../results/chaos_quick.json");
    let got = document_to_json(&out.records, &out.failures);
    assert_eq!(
        got, golden,
        "chaos --quick document drifted from results/chaos_quick.json"
    );
}

#[test]
#[ignore = "slow; CI runs it in release"]
fn faults_quick_document_is_byte_identical_to_golden() {
    let out = faults::run(true);
    assert!(
        out.failures.is_empty(),
        "faults quick run had failed runs: {:?}",
        out.failures
    );
    let golden = include_str!("../../../results/faults_quick.json");
    let got = document_to_json(&out.records, &out.failures);
    assert_eq!(
        got, golden,
        "faults --quick document drifted from results/faults_quick.json"
    );
}
