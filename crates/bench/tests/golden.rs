//! Golden-equivalence tests: run the chaos and faults harnesses
//! in-process at the quick budget and byte-compare their serialized
//! documents against the committed `results/*_quick.json` files.
//!
//! These are the refactor tripwires for the routing/selection stack:
//! the documents embed every seeded simulation outcome (throughput,
//! latency percentiles, reconvergence lag, retransmit ratios, fault
//! replays), so any behavioral drift in the simulator, the
//! `SelectionEngine`, the fault schedules or the RNG consumption order
//! shows up as a byte diff. Regenerate deliberately with
//! `cargo run --release -p lmpr-bench --bin chaos -- --quick --json results/chaos_quick.json`
//! (resp. `faults`) and commit the new goldens alongside the change
//! that explains them.
//!
//! Marked `#[ignore]` because each takes tens of seconds unoptimized;
//! CI runs them in release via
//! `cargo test -q --release -p lmpr-bench --test golden -- --ignored`.

use lmpr_bench::orchestrator::{OrchestratorOptions, SweepOrchestrator};
use lmpr_bench::{chaos, document_to_json, faults};

#[test]
#[ignore = "slow; CI runs it in release"]
fn chaos_quick_document_is_byte_identical_to_golden() {
    let out = chaos::run(true);
    assert_eq!(out.violations, 0, "chaos quick run tripped invariants");
    assert!(
        out.failures.is_empty(),
        "chaos quick run had failed runs: {:?}",
        out.failures
    );
    let golden = include_str!("../../../results/chaos_quick.json");
    let got = document_to_json(&out.records, &out.failures);
    assert_eq!(
        got, golden,
        "chaos --quick document drifted from results/chaos_quick.json"
    );
}

#[test]
#[ignore = "slow; CI runs it in release"]
fn killed_and_resumed_orchestrator_matches_golden_byte_for_byte() {
    // Crash-recovery certificate for the sweep orchestrator: interrupt
    // the supervised quick sweep at a fixed journal point (three cells
    // completed — deterministic, unlike a wall-clock SIGKILL), then
    // re-run the orchestrator against the same results directory. The
    // resumed sweep must skip the journaled cells, finish the rest, and
    // assemble a document byte-identical to the committed golden — i.e.
    // indistinguishable from a sweep that was never interrupted.
    let dir = std::env::temp_dir().join(format!("lmpr-orch-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut opts = OrchestratorOptions::new(&dir, true);
    opts.max_cells = Some(3);
    let mut first = SweepOrchestrator::new(opts.clone()).expect("orchestrator setup");
    let report = first.run().expect("first pass");
    assert!(!report.completed, "max_cells must interrupt the sweep");
    assert!(report.document.is_none());
    assert_eq!(report.cells_run, 3);
    assert!(
        dir.join("journal.json").is_file(),
        "interrupted sweep must leave a journal"
    );
    drop(first);

    opts.max_cells = None;
    let mut second = SweepOrchestrator::new(opts).expect("orchestrator reload");
    let report = second.run().expect("second pass");
    assert!(report.completed, "resumed sweep must finish the grid");
    assert!(report.cell_errors.is_empty(), "{:?}", report.cell_errors);
    assert_eq!(report.violations, 0);
    assert_eq!(report.failure_count, 0);
    // Fewer cells this pass: the journal already held the first three.
    assert_eq!(report.cells_run, 10 - 3);

    let golden = include_str!("../../../results/chaos_quick.json");
    let got = report.document.expect("completed sweep has a document");
    assert_eq!(
        got, golden,
        "killed-and-resumed orchestrator document drifted from results/chaos_quick.json"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[ignore = "slow; CI runs it in release"]
fn faults_quick_document_is_byte_identical_to_golden() {
    let out = faults::run(true);
    assert!(
        out.failures.is_empty(),
        "faults quick run had failed runs: {:?}",
        out.failures
    );
    let golden = include_str!("../../../results/faults_quick.json");
    let got = document_to_json(&out.records, &out.failures);
    assert_eq!(
        got, golden,
        "faults --quick document drifted from results/faults_quick.json"
    );
}
