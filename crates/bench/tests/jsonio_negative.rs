//! Negative-path hardening for `lmpr_bench::jsonio`.
//!
//! The routing-controller daemon feeds socket frames straight into this
//! parser, so every malformed input must come back as a typed
//! [`ParseError`] — truncations, duplicate keys, non-UTF-8 bytes, depth
//! bombs, and arbitrary byte mutations of valid documents must never
//! panic and never loop.
//!
//! [`ParseError`]: lmpr_bench::jsonio::ParseError

use lmpr_bench::jsonio::{parse, parse_bytes};

/// A representative valid document exercising every value shape the
/// writers emit: nested objects/arrays, escapes, exponent numbers.
const SEED_DOC: &str = r#"{
  "version": 3,
  "quick": false,
  "label": "sweep-r0-s1 \"quoted\" é\n",
  "rates": [5e-5, -1.5e-3, 0.3437152777777778, 0],
  "cells": [
    {"id": "a", "seeds": [{"seed": 0, "thru": "0.25"}], "aux": null},
    {"id": "b", "seeds": [], "aux": true}
  ]
}"#;

/// Deterministic splitmix64 — the only randomness source this test
/// needs, so failures replay exactly.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn every_truncation_of_a_valid_document_is_a_typed_error() {
    assert!(parse(SEED_DOC).is_ok(), "seed document must be valid");
    for cut in 0..SEED_DOC.len() {
        if !SEED_DOC.is_char_boundary(cut) {
            continue;
        }
        let prefix = &SEED_DOC[..cut];
        // Every proper prefix is malformed (the document has no valid
        // proper prefix: it opens with '{' and only closes at the end),
        // and must fail with a structured error rather than panicking.
        let e = parse(prefix).expect_err("truncated document accepted");
        assert!(e.offset <= prefix.len(), "offset {} past input", e.offset);
        assert!(!e.message.is_empty());
    }
    // Byte-level truncations (possibly splitting a UTF-8 sequence) go
    // through the bytes entry point.
    let bytes = SEED_DOC.as_bytes();
    for cut in 0..bytes.len() {
        assert!(
            parse_bytes(&bytes[..cut]).is_err(),
            "byte truncation at {cut} accepted"
        );
    }
}

#[test]
fn mutated_documents_never_panic_and_errors_stay_in_bounds() {
    let mut rng = 0x6a09_e667_f3bc_c908_u64;
    let seed = SEED_DOC.as_bytes();
    let mut accepted = 0u32;
    for _ in 0..4000 {
        let mut doc = seed.to_vec();
        // 1-4 point mutations: overwrite, insert, or delete a byte.
        let edits = 1 + (splitmix64(&mut rng) % 4) as usize;
        for _ in 0..edits {
            let at = (splitmix64(&mut rng) as usize) % doc.len();
            match splitmix64(&mut rng) % 3 {
                0 => doc[at] = (splitmix64(&mut rng) & 0xFF) as u8,
                1 => doc.insert(at, (splitmix64(&mut rng) & 0xFF) as u8),
                _ => {
                    doc.remove(at);
                }
            }
        }
        match parse_bytes(&doc) {
            Ok(_) => accepted += 1, // some mutations stay valid JSON
            Err(e) => {
                assert!(
                    e.offset <= doc.len(),
                    "error offset {} past {}-byte input",
                    e.offset,
                    doc.len()
                );
                assert!(!e.message.is_empty());
            }
        }
    }
    // Sanity: the loop actually explored both outcomes.
    assert!(accepted > 0, "no mutation survived — mutator too harsh?");
    assert!(accepted < 4000, "every mutation survived — mutator inert?");
}

#[test]
fn duplicate_keys_are_rejected_at_any_nesting_level() {
    for bad in [
        r#"{"x": 1, "x": 2}"#,
        r#"{"outer": {"x": 1, "x": 2}}"#,
        r#"[{"x": 1, "x": 2}]"#,
        r#"{"a": 1, "b": [{"c": 0, "c": 1}]}"#,
    ] {
        let e = parse(bad).expect_err("duplicate key accepted");
        assert_eq!(e.message, "duplicate object key", "for {bad}");
    }
}

#[test]
fn non_utf8_payloads_are_typed_errors_not_panics() {
    // Invalid at byte 0, mid-document, and inside a string literal.
    let cases: &[(&[u8], usize)] = &[
        (&[0xFF, 0xFE], 0),
        (b"{\"k\": \xC3}", 6),
        (b"[1, 2, \x80]", 7),
        (b"{\"s\": \"ab\xF0\x28\"}", 9),
    ];
    for &(bytes, offset) in cases {
        let e = parse_bytes(bytes).expect_err("accepted invalid utf-8");
        assert_eq!(e.message, "invalid utf-8 in document", "for {bytes:?}");
        assert_eq!(e.offset, offset, "for {bytes:?}");
    }
}

#[test]
fn deep_nesting_fails_fast_without_exhausting_the_stack() {
    for (open, close) in [("[", "]"), ("{\"k\": ", "}")] {
        for depth in [65usize, 128, 4096, 100_000] {
            let doc = open.repeat(depth) + "0" + &close.repeat(depth);
            let e = parse(&doc).expect_err("depth bomb accepted");
            assert_eq!(e.message, "nesting too deep", "depth {depth}");
        }
    }
}
