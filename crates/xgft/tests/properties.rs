//! Property-based tests for the XGFT substrate: the labelling, link
//! enumeration and path machinery must hold for *arbitrary* valid
//! parameter sets, not just the paper's topologies.

use proptest::prelude::*;
use xgft::{DirectedLinkId, NodeId, PathId, PnId, Topology, XgftSpec, MAX_HEIGHT};

/// Small random specs: heights 1..=4, arities 1..=5 — large enough to
/// hit every code path (w_1 = 1 and w_1 > 1, asymmetric levels) while
/// keeping exhaustive per-case sweeps cheap.
fn arb_spec() -> impl Strategy<Value = XgftSpec> {
    (1usize..=4)
        .prop_flat_map(|h| {
            (
                prop::collection::vec(1u32..=5, h),
                prop::collection::vec(1u32..=5, h),
            )
        })
        .prop_map(|(m, w)| XgftSpec::new(&m, &w).expect("generated spec must be valid"))
}

fn arb_topo() -> impl Strategy<Value = Topology> {
    arb_spec().prop_map(Topology::new)
}

/// A topology together with a random SD pair.
fn topo_and_pair() -> impl Strategy<Value = (Topology, PnId, PnId)> {
    arb_topo().prop_flat_map(|t| {
        let n = t.num_pns();
        (Just(t), 0..n, 0..n).prop_map(|(t, s, d)| (t, PnId(s), PnId(d)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn digits_roundtrip((t, s, _d) in topo_and_pair()) {
        let mut digits = [0u32; MAX_HEIGHT];
        for level in 0..=t.height() {
            // Reuse the PN rank as an in-range rank modulo the level size.
            let rank = s.0 % t.nodes_at_level(level);
            let n = NodeId { level: level as u8, rank };
            t.digits_of(n, &mut digits);
            prop_assert_eq!(t.node_from_digits(level, &digits), n);
        }
    }

    #[test]
    fn num_paths_is_w_product((t, s, d) in topo_and_pair()) {
        let kappa = t.nca_level(s, d);
        prop_assert_eq!(t.num_paths(s, d), t.w_prod(kappa));
        if s == d {
            prop_assert_eq!(kappa, 0);
        } else {
            prop_assert!(kappa >= 1);
        }
    }

    #[test]
    fn nca_is_symmetric_and_minimal((t, s, d) in topo_and_pair()) {
        let kappa = t.nca_level(s, d);
        prop_assert_eq!(kappa, t.nca_level(d, s));
        // Digits strictly above kappa agree; digit kappa differs (s != d).
        for i in (kappa + 1)..=t.height() {
            prop_assert_eq!(t.pn_digit(s, i), t.pn_digit(d, i));
        }
        if s != d {
            prop_assert_ne!(t.pn_digit(s, kappa), t.pn_digit(d, kappa));
        }
    }

    #[test]
    fn every_path_is_a_valid_shortest_path((t, s, d) in topo_and_pair()) {
        prop_assume!(s != d);
        let kappa = t.nca_level(s, d);
        for p in t.all_paths(s, d) {
            let nodes = t.path_nodes(s, d, p);
            prop_assert_eq!(nodes.len(), 2 * kappa + 1);
            prop_assert_eq!(nodes[0], NodeId::pn(s));
            prop_assert_eq!(*nodes.last().unwrap(), NodeId::pn(d));
            prop_assert_eq!(nodes[kappa].level as usize, kappa);
            for (j, w) in nodes.windows(2).enumerate() {
                let expect = if j < kappa { w[0].level + 1 } else { w[0].level - 1 };
                prop_assert_eq!(w[1].level, expect);
            }
        }
    }

    #[test]
    fn paths_reach_distinct_apexes((t, s, d) in topo_and_pair()) {
        prop_assume!(s != d);
        let kappa = t.nca_level(s, d);
        let mut seen = std::collections::HashSet::new();
        for p in t.all_paths(s, d) {
            let apex = t.path_nodes(s, d, p)[kappa];
            prop_assert!(seen.insert(apex), "duplicate apex across path ids");
        }
        prop_assert_eq!(seen.len() as u64, t.num_paths(s, d));
    }

    #[test]
    fn up_port_decomposition_roundtrips((t, s, d) in topo_and_pair()) {
        prop_assume!(s != d);
        let mut u = [0u32; MAX_HEIGHT];
        for p in t.all_paths(s, d) {
            let k = t.path_up_ports(s, d, p, &mut u);
            for i in 1..=k {
                prop_assert!(u[i - 1] < t.spec().w_at(i));
            }
            prop_assert_eq!(t.path_from_up_ports(s, d, &u[..k]), p);
        }
    }

    #[test]
    fn dmodk_and_smodk_are_in_range((t, s, d) in topo_and_pair()) {
        prop_assert!(t.dmodk_path(s, d).0 < t.num_paths(s, d));
        prop_assert!(t.smodk_path(s, d).0 < t.num_paths(s, d));
    }

    #[test]
    fn dmodk_same_destination_same_up_ports((t, s, d) in topo_and_pair()) {
        // d-mod-k is destination-determined: two sources with the same
        // NCA level to `d` climb through the same port sequence.
        let s2 = PnId((s.0 + 1) % t.num_pns());
        prop_assume!(t.nca_level(s, d) == t.nca_level(s2, d));
        prop_assume!(s != d && s2 != d);
        let mut u1 = [0u32; MAX_HEIGHT];
        let mut u2 = [0u32; MAX_HEIGHT];
        let k1 = t.path_up_ports(s, d, t.dmodk_path(s, d), &mut u1);
        let k2 = t.path_up_ports(s2, d, t.dmodk_path(s2, d), &mut u2);
        prop_assert_eq!(k1, k2);
        prop_assert_eq!(&u1[..k1], &u2[..k2]);
    }

    #[test]
    fn link_walks_use_valid_links((t, s, d) in topo_and_pair()) {
        prop_assume!(s != d);
        for p in t.all_paths(s, d) {
            let mut count = 0usize;
            t.walk_path(s, d, p, |link| {
                assert!(link.0 < t.num_links());
                count += 1;
            });
            prop_assert_eq!(count, 2 * t.nca_level(s, d));
        }
    }

    #[test]
    fn endpoints_invert_link_from_port(t in arb_topo()) {
        for id in 0..t.num_links() {
            let e = t.endpoints(DirectedLinkId(id));
            prop_assert_eq!(t.link_from_port(e.from, e.from_port), DirectedLinkId(id));
        }
    }

    #[test]
    fn construction_number_is_bijective_per_level(t in arb_topo()) {
        for level in 0..=t.height() {
            let n = t.nodes_at_level(level);
            let mut seen = vec![false; n as usize];
            for rank in 0..n {
                let c = t.construction_number(NodeId { level: level as u8, rank });
                prop_assert!(c < n as u64);
                prop_assert!(!seen[c as usize]);
                seen[c as usize] = true;
            }
        }
    }

    #[test]
    fn pn_construction_number_is_rank(t in arb_topo()) {
        for p in 0..t.num_pns().min(64) {
            prop_assert_eq!(t.construction_number(NodeId::pn(PnId(p))), p as u64);
        }
    }

    #[test]
    fn distinct_paths_share_no_directed_link_iff_apex_differs_everywhere(
        (t, s, d) in topo_and_pair()
    ) {
        prop_assume!(s != d);
        prop_assume!(t.num_paths(s, d) <= 32);
        // Collect each path's link set; two paths are edge-disjoint iff
        // their up-port vectors differ at position 1 (they fork at the PN).
        let mut u = [0u32; MAX_HEIGHT];
        let paths: Vec<(u32, Vec<u32>)> = t
            .all_paths(s, d)
            .map(|p| {
                let k = t.path_up_ports(s, d, p, &mut u);
                let mut links = Vec::new();
                t.walk_path(s, d, p, |l| links.push(l.0));
                (u[..k].first().copied().unwrap_or(0), links)
            })
            .collect();
        for (i, (u1, l1)) in paths.iter().enumerate() {
            for (u2, l2) in paths.iter().skip(i + 1) {
                let shares = l1.iter().any(|x| l2.contains(x));
                if u1 != u2 {
                    prop_assert!(!shares, "paths with different first hop must be edge-disjoint");
                } else {
                    prop_assert!(shares, "paths with the same first hop share at least that link");
                }
            }
        }
    }
}

#[test]
fn self_pair_walks_nothing() {
    let t = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).unwrap());
    let mut visited = 0;
    t.walk_path(PnId(1), PnId(1), PathId(0), |_| visited += 1);
    assert_eq!(visited, 0);
}
