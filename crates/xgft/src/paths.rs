//! Shortest-path enumeration between processing nodes.
//!
//! For an SD pair whose nearest common ancestor (NCA) is at level `κ`,
//! every shortest path is determined by the sequence of up-port choices
//! `(u_1, …, u_κ)` with `u_i < w_i`: the climb ends at the top-level
//! switch of the NCA sub-tree whose low `κ` label digits are exactly
//! `(u_1, …, u_κ)`, and the descent to the destination is then unique.
//!
//! The paper enumerates paths "by leftmost top-level switch"; in label
//! arithmetic that is the mixed-radix number
//!
//! ```text
//! PathId = u_1·(w_2 ⋯ w_κ) + u_2·(w_3 ⋯ w_κ) + … + u_κ
//! ```
//!
//! with `u_1` most significant. This module implements that bijection and
//! the destination-mod-k path index, and can walk a path's directed links
//! without allocating.

use crate::{DirectedLinkId, NodeId, PathId, PnId, Topology, MAX_HEIGHT};

impl Topology {
    /// Level of the nearest common ancestor of `s` and `d`: the highest
    /// label position at which the two PNs differ, or 0 when `s == d`.
    pub fn nca_level(&self, s: PnId, d: PnId) -> usize {
        debug_assert!(s.0 < self.num_pns() && d.0 < self.num_pns());
        for i in (1..=self.height()).rev() {
            if self.pn_digit(s, i) != self.pn_digit(d, i) {
                return i;
            }
        }
        0
    }

    /// Number of distinct shortest paths between `s` and `d`
    /// (Property 1: `Π_{i=1..κ} w_i`). Returns 1 for `s == d` (the empty
    /// path), so the value is always a valid path-count denominator.
    pub fn num_paths(&self, s: PnId, d: PnId) -> u64 {
        self.w_prod(self.nca_level(s, d))
    }

    /// Decompose a path index into its up-port choices `(u_1, …, u_κ)`;
    /// writes `u_i` to `out[i-1]` and returns `κ`.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range for the pair.
    pub fn path_up_ports(&self, s: PnId, d: PnId, path: PathId, out: &mut [u32]) -> usize {
        let kappa = self.nca_level(s, d);
        let x = self.w_prod(kappa);
        assert!(path.0 < x, "path {} out of range (X = {x})", path.0);
        let mut p = path.0;
        // u_1 is most significant: weight of u_i is Π_{j=i+1..κ} w_j.
        for i in 1..=kappa {
            let weight = x / self.w_prod(i);
            out[i - 1] = (p / weight) as u32;
            p %= weight;
        }
        kappa
    }

    /// Compose a path index from up-port choices (inverse of
    /// [`Topology::path_up_ports`]).
    pub fn path_from_up_ports(&self, s: PnId, d: PnId, ports: &[u32]) -> PathId {
        let kappa = self.nca_level(s, d);
        debug_assert_eq!(ports.len(), kappa);
        let x = self.w_prod(kappa);
        let mut p: u64 = 0;
        for i in 1..=kappa {
            let weight = x / self.w_prod(i);
            debug_assert!(ports[i - 1] < self.spec().w_at(i));
            p += ports[i - 1] as u64 * weight;
        }
        PathId(p)
    }

    /// The destination-mod-k path for an SD pair: climbing from level
    /// `k-1` to level `k`, d-mod-k takes the up port
    /// `u_k = ⌊ d / Π_{i<k} w_i ⌋ mod w_k`.
    ///
    /// Verified against the paper's worked example: in
    /// `XGFT(3; 4,4,4; 1,2,4)` the pair `(0, 63)` routes on Path 7.
    pub fn dmodk_path(&self, s: PnId, d: PnId) -> PathId {
        let kappa = self.nca_level(s, d);
        let x = self.w_prod(kappa);
        let mut p: u64 = 0;
        for i in 1..=kappa {
            let u = (d.0 as u64 / self.w_prod(i - 1)) % self.spec().w_at(i) as u64;
            let weight = x / self.w_prod(i);
            p += u * weight;
        }
        PathId(p)
    }

    /// The source-mod-k path (the symmetric scheme; the paper reports it
    /// performs within noise of d-mod-k). Provided for completeness and
    /// ablations.
    pub fn smodk_path(&self, s: PnId, d: PnId) -> PathId {
        let kappa = self.nca_level(s, d);
        let x = self.w_prod(kappa);
        let mut p: u64 = 0;
        for i in 1..=kappa {
            let u = (s.0 as u64 / self.w_prod(i - 1)) % self.spec().w_at(i) as u64;
            let weight = x / self.w_prod(i);
            p += u * weight;
        }
        PathId(p)
    }

    /// Visit every directed link of a path, in order (κ up-links then κ
    /// down-links). Allocation-free. Does nothing when `s == d`.
    pub fn walk_path<F: FnMut(DirectedLinkId)>(&self, s: PnId, d: PnId, path: PathId, mut f: F) {
        let mut ports = [0u32; MAX_HEIGHT];
        let kappa = self.path_up_ports(s, d, path, &mut ports);
        if kappa == 0 {
            return;
        }
        // Climb: maintain the current node's digits; at step l the level-
        // (l-1) node's digit l (position l) flips from the source's m-radix
        // digit to the chosen w-radix port.
        let mut digits = [0u32; MAX_HEIGHT];
        self.digits_of(NodeId::pn(s), &mut digits);
        let mut rank = s.0;
        for l in 1..=kappa {
            f(self.up_link(l, rank, ports[l - 1]));
            digits[l - 1] = ports[l - 1];
            rank = self.node_from_digits(l, &digits).rank;
        }
        // Descend: at step l the child index is the destination's digit l.
        for l in (1..=kappa).rev() {
            let child = self.pn_digit(d, l);
            f(self.down_link(l, rank, child));
            digits[l - 1] = child;
            rank = self.node_from_digits(l - 1, &digits).rank;
        }
        debug_assert_eq!(rank, d.0, "path must terminate at the destination");
    }

    /// The sequence of nodes a path visits, source and destination
    /// included (`2κ + 1` nodes). Allocates; intended for tests, display
    /// and route construction, not for hot loops.
    pub fn path_nodes(&self, s: PnId, d: PnId, path: PathId) -> Vec<NodeId> {
        let mut nodes = vec![NodeId::pn(s)];
        self.walk_path(s, d, path, |link| {
            nodes.push(self.endpoints(link).to);
        });
        nodes
    }

    /// The sequence of output-port indices a source-routed packet needs:
    /// entry `j` is the output port taken at the `j`-th node of
    /// [`Topology::path_nodes`] (so the vector has `2κ` entries).
    pub fn path_output_ports(&self, s: PnId, d: PnId, path: PathId) -> Vec<u32> {
        let mut ports = Vec::new();
        self.walk_path(s, d, path, |link| {
            ports.push(self.endpoints(link).from_port);
        });
        ports
    }

    /// Iterator over all path ids of an SD pair.
    pub fn all_paths(&self, s: PnId, d: PnId) -> impl Iterator<Item = PathId> {
        (0..self.num_paths(s, d)).map(PathId)
    }
}

/// A materialized walk of one path: nodes and links, for pretty-printing
/// (mirrors the path listings in the paper's Section 4).
#[derive(Debug, Clone)]
pub struct PathWalk {
    /// Visited nodes, endpoints included.
    pub nodes: Vec<NodeId>,
    /// Traversed directed links.
    pub links: Vec<DirectedLinkId>,
}

impl PathWalk {
    /// Materialize a path.
    pub fn collect(topo: &Topology, s: PnId, d: PnId, path: PathId) -> Self {
        let mut links = Vec::new();
        topo.walk_path(s, d, path, |l| links.push(l));
        PathWalk {
            nodes: topo.path_nodes(s, d, path),
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn nca_levels() {
        let t = fig3();
        assert_eq!(t.nca_level(PnId(0), PnId(0)), 0);
        assert_eq!(t.nca_level(PnId(0), PnId(1)), 1); // same level-1 group
        assert_eq!(t.nca_level(PnId(0), PnId(4)), 2); // differ in digit 2
        assert_eq!(t.nca_level(PnId(0), PnId(63)), 3);
        assert_eq!(t.num_paths(PnId(0), PnId(1)), 1);
        assert_eq!(t.num_paths(PnId(0), PnId(4)), 2);
        assert_eq!(t.num_paths(PnId(0), PnId(63)), 8);
        assert_eq!(t.num_paths(PnId(5), PnId(5)), 1);
    }

    #[test]
    fn paper_dmodk_example() {
        // Worked example of §4.2: pair (0, 63) in XGFT(3; 4,4,4; 1,2,4)
        // has 8 paths and d-mod-k picks Path 7.
        let t = fig3();
        assert_eq!(t.dmodk_path(PnId(0), PnId(63)), PathId(7));
        // Up ports for path 7: u = (0, 1, 3).
        let mut u = [0u32; MAX_HEIGHT];
        let kappa = t.path_up_ports(PnId(0), PnId(63), PathId(7), &mut u);
        assert_eq!(kappa, 3);
        assert_eq!(&u[..3], &[0, 1, 3]);
    }

    #[test]
    fn up_port_roundtrip() {
        let t = fig3();
        let (s, d) = (PnId(3), PnId(60));
        let mut u = [0u32; MAX_HEIGHT];
        for p in t.all_paths(s, d) {
            let k = t.path_up_ports(s, d, p, &mut u);
            assert_eq!(t.path_from_up_ports(s, d, &u[..k]), p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn path_index_out_of_range_panics() {
        let t = fig3();
        let mut u = [0u32; MAX_HEIGHT];
        t.path_up_ports(PnId(0), PnId(1), PathId(1), &mut u);
    }

    #[test]
    fn walk_reaches_destination_through_distinct_top_switches() {
        let t = fig3();
        let (s, d) = (PnId(0), PnId(63));
        let mut tops = std::collections::HashSet::new();
        for p in t.all_paths(s, d) {
            let nodes = t.path_nodes(s, d, p);
            assert_eq!(nodes.len(), 7); // 2κ+1 with κ=3
            assert_eq!(nodes[0], NodeId::pn(s));
            assert_eq!(*nodes.last().unwrap(), NodeId::pn(d));
            // Apex is the level-κ switch.
            assert_eq!(nodes[3].level, 3);
            tops.insert(nodes[3].rank);
            // Levels rise then fall by exactly one per hop.
            for w in nodes.windows(2) {
                assert_eq!((w[0].level as i32 - w[1].level as i32).abs(), 1);
            }
        }
        assert_eq!(tops.len(), 8, "each path uses a distinct top switch");
    }

    #[test]
    fn leftmost_enumeration_orders_top_switches() {
        // Path i uses the i-th leftmost top-level switch of the NCA
        // sub-tree: the apex's construction number (the paper's
        // left-to-right position) must equal the path index.
        let t = fig3();
        let (s, d) = (PnId(0), PnId(63));
        for p in t.all_paths(s, d) {
            let apex = t.path_nodes(s, d, p)[3];
            assert_eq!(t.construction_number(apex), p.0);
        }
        // Also on a lower sub-tree, relative to the sub-tree's own
        // leftmost top switch.
        let (s, d) = (PnId(16), PnId(20)); // NCA level 2
        let base = t
            .all_paths(s, d)
            .map(|p| t.construction_number(t.path_nodes(s, d, p)[2]))
            .min()
            .unwrap();
        for p in t.all_paths(s, d) {
            let apex = t.path_nodes(s, d, p)[2];
            assert_eq!(t.construction_number(apex) - base, p.0);
        }
    }

    #[test]
    fn walk_path_empty_for_self_pair() {
        let t = fig3();
        let mut n = 0;
        t.walk_path(PnId(9), PnId(9), PathId(0), |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn low_nca_path_stays_inside_subtree() {
        let t = fig3();
        let (s, d) = (PnId(0), PnId(4)); // NCA at level 2
        for p in t.all_paths(s, d) {
            let nodes = t.path_nodes(s, d, p);
            assert_eq!(nodes.len(), 5);
            assert_eq!(nodes[2].level, 2);
        }
    }

    #[test]
    fn smodk_mirrors_dmodk() {
        let t = fig3();
        // s-mod-k of (s, d) equals d-mod-k of (d, s).
        for (s, d) in [(0u32, 63u32), (5, 42), (17, 3)] {
            assert_eq!(
                t.smodk_path(PnId(s), PnId(d)),
                t.dmodk_path(PnId(d), PnId(s))
            );
        }
    }

    #[test]
    fn output_ports_match_link_walk() {
        let t = fig3();
        let (s, d) = (PnId(2), PnId(61));
        for p in t.all_paths(s, d) {
            let ports = t.path_output_ports(s, d, p);
            let nodes = t.path_nodes(s, d, p);
            assert_eq!(ports.len(), nodes.len() - 1);
            for (j, &port) in ports.iter().enumerate() {
                let link = t.link_from_port(nodes[j], port);
                assert_eq!(t.endpoints(link).to, nodes[j + 1]);
            }
        }
    }
}
