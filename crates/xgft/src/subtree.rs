//! Sub-tree cuts — the machinery behind Lemma 1 of the paper.
//!
//! An `XGFT(h; …)` contains `Π_{i>k} m_i` disjoint sub-trees of height
//! `k`, each a copy of `XGFT(k; m_1..m_k; w_1..w_k)` covering
//! `Π_{i≤k} m_i` consecutive processing nodes. A height-`k` sub-tree is
//! connected to the rest of the fabric by `TL(k) = Π_{i=1..k+1} w_i`
//! links in each direction (its `Π_{i≤k} w_i` top switches each have
//! `w_{k+1}` parents). The optimal-load lower bound `ML(TM)` maximizes
//! `MT(TM, st) / TL(k)` over all sub-trees `st` of all heights
//! `0 ≤ k ≤ h-1` (height 0 = a single processing node).

use crate::{PnId, Topology};

/// One sub-tree cut: the height-`k` sub-tree with index `index`
/// (sub-trees at a height are numbered left to right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubtreeCut {
    /// Sub-tree height `k` in `0 ..= h-1`.
    pub height: usize,
    /// Index among the `Π_{i>k} m_i` sub-trees of this height.
    pub index: u32,
}

impl Topology {
    /// Number of height-`k` sub-trees (`k ≤ h`).
    pub fn num_subtrees(&self, k: usize) -> u32 {
        (self.m_prod(self.height()) / self.m_prod(k)) as u32
    }

    /// Number of processing nodes inside each height-`k` sub-tree.
    pub fn subtree_pns(&self, k: usize) -> u32 {
        self.m_prod(k) as u32
    }

    /// Index of the height-`k` sub-tree containing `pn`.
    pub fn subtree_of(&self, pn: PnId, k: usize) -> u32 {
        (pn.0 as u64 / self.m_prod(k)) as u32
    }

    /// `TL(k) = Π_{i=1..k+1} w_i` — the number of one-directional links
    /// connecting a height-`k` sub-tree (`k < h`) to the rest of the
    /// XGFT.
    pub fn tl(&self, k: usize) -> u64 {
        assert!(k < self.height(), "the whole tree has no outside links");
        self.w_prod(k + 1)
    }

    /// Iterate over every cut relevant to Lemma 1 (all heights
    /// `0 ..= h-1`, all sub-trees of each height).
    pub fn all_cuts(&self) -> impl Iterator<Item = SubtreeCut> + '_ {
        (0..self.height()).flat_map(move |k| {
            (0..self.num_subtrees(k)).map(move |index| SubtreeCut { height: k, index })
        })
    }

    /// Range of processing nodes inside a cut's sub-tree.
    pub fn cut_pn_range(&self, cut: SubtreeCut) -> std::ops::Range<u32> {
        let per = self.subtree_pns(cut.height);
        (cut.index * per)..((cut.index + 1) * per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XgftSpec;

    fn topo() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap())
    }

    #[test]
    fn subtree_counts_and_sizes() {
        let t = topo();
        assert_eq!(t.num_subtrees(0), 128);
        assert_eq!(t.num_subtrees(1), 32);
        assert_eq!(t.num_subtrees(2), 8);
        assert_eq!(t.num_subtrees(3), 1);
        assert_eq!(t.subtree_pns(0), 1);
        assert_eq!(t.subtree_pns(2), 16);
    }

    #[test]
    fn tl_is_cumulative_w_product() {
        let t = topo();
        assert_eq!(t.tl(0), 1); // w_1
        assert_eq!(t.tl(1), 4); // w_1 w_2
        assert_eq!(t.tl(2), 16); // w_1 w_2 w_3
    }

    #[test]
    #[should_panic(expected = "no outside links")]
    fn tl_of_whole_tree_panics() {
        topo().tl(3);
    }

    #[test]
    fn membership_matches_ranges() {
        let t = topo();
        for cut in t.all_cuts() {
            for pn in t.cut_pn_range(cut) {
                assert_eq!(t.subtree_of(PnId(pn), cut.height), cut.index);
            }
        }
    }

    #[test]
    fn cut_count_totals() {
        let t = topo();
        assert_eq!(t.all_cuts().count(), 128 + 32 + 8);
    }

    #[test]
    fn paths_within_subtree_stay_within() {
        // A pair with NCA at level k never leaves its height-k sub-tree:
        // every link's upper level is ≤ k.
        let t = topo();
        let (s, d) = (PnId(0), PnId(15)); // NCA level 2 (same 16-PN sub-tree)
        assert_eq!(t.nca_level(s, d), 2);
        for p in t.all_paths(s, d) {
            t.walk_path(s, d, p, |link| {
                let (level, _) = t.link_level_dir(link);
                assert!(level <= 2);
            });
        }
    }
}
