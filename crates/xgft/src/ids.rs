//! Strongly-typed identifiers used throughout the workspace.

/// A processing node (level-0 node), numbered `0 .. N` exactly as in the
/// paper: the PN with label digits `(a_h, …, a_1)` has rank
/// `Σ a_i · Π_{j<i} m_j` (digit 1 least significant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PnId(pub u32);

/// Any node of the tree: `(level, rank)` with `rank` dense within the
/// level. Level 0 ranks coincide with [`PnId`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Level in `0 ..= h`; level 0 is the processing nodes.
    pub level: u8,
    /// Dense rank within the level (mixed-radix value of the label
    /// digits, digit `h` most significant).
    pub rank: u32,
}

impl NodeId {
    /// The node for a processing node id.
    pub fn pn(pn: PnId) -> Self {
        NodeId {
            level: 0,
            rank: pn.0,
        }
    }
}

/// Direction of a directed link relative to the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// From a level-`l-1` node up to a level-`l` node.
    Up,
    /// From a level-`l` node down to a level-`l-1` node.
    Down,
}

/// A directed link, densely numbered in `0 .. topology.num_links()`.
///
/// Up-links and down-links are distinct (full-duplex cabling), because
/// the maximum-link-load metric of the paper treats the two directions
/// independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DirectedLinkId(pub u32);

/// Index of a shortest path within the canonical enumeration of all
/// shortest paths of one SD pair (the paper's "Path i": the path through
/// the `i`-th leftmost top-level switch of the NCA sub-tree).
///
/// A `PathId` is only meaningful together with the SD pair it was
/// enumerated for; it is *not* a global identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_for_pn_is_level_zero() {
        let n = NodeId::pn(PnId(17));
        assert_eq!(n.level, 0);
        assert_eq!(n.rank, 17);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(PnId(1) < PnId(2));
        assert!(PathId(0) < PathId(5));
        assert!(DirectedLinkId(3) < DirectedLinkId(4));
    }
}
