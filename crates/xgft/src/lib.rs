//! Extended generalized fat-tree (XGFT) topology substrate.
//!
//! An `XGFT(h; m_1, …, m_h; w_1, …, w_h)` is a layered indirect network
//! with `h + 1` levels of nodes, introduced by Öhring, Ibel, Das and Kumar
//! ("On Generalized Fat Trees", IPPS 1995). Level 0 holds the processing
//! nodes; levels 1 through `h` hold switches. Each level-`i` node
//! (`0 ≤ i ≤ h-1`) has `w_{i+1}` parents and each level-`i` node
//! (`1 ≤ i ≤ h`) has `m_i` children. Almost every practical fat-tree
//! variant (m-port n-trees, k-ary n-trees, generalized fat-trees) is an
//! XGFT, which is why the limited multi-path routing paper of Mahapatra,
//! Yuan and Nienaber (IPDPS workshops 2012) — the system reproduced by
//! this workspace — is formulated on XGFTs.
//!
//! This crate provides:
//!
//! * [`XgftSpec`] — a validated parameter set plus constructors for the
//!   common equivalences (`m`-port `n`-trees, `k`-ary `n`-trees, GFTs);
//! * [`Topology`] — precomputed products, per-level node counts, node
//!   labelling (the paper's `(level, a_h, …, a_1)` tuples) and a dense
//!   enumeration of every *directed* link;
//! * shortest-path machinery: nearest-common-ancestor levels, the
//!   canonical enumeration of all `Π_{i≤κ} w_i` shortest paths of an SD
//!   pair ([`Topology::num_paths`], [`Topology::walk_path`]), and the
//!   destination-mod-k path index ([`Topology::dmodk_path`]);
//! * sub-tree cut utilities used by the optimal-load lower bound
//!   (Lemma 1 of the paper).
//!
//! The representation is *implicit*: nodes are identified by
//! `(level, rank)` pairs and digit tuples are converted on demand, so a
//! topology object for a 3456-node 24-port 3-tree occupies a few hundred
//! bytes. Hot paths (link walking) are allocation-free.
//!
//! # Example
//!
//! ```
//! use xgft::{XgftSpec, Topology, PnId};
//!
//! // The paper's Figure 3 topology: XGFT(3; 4,4,4; 1,2,4).
//! let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
//! assert_eq!(topo.num_pns(), 64);
//!
//! let (s, d) = (PnId(0), PnId(63));
//! assert_eq!(topo.nca_level(s, d), 3);
//! assert_eq!(topo.num_paths(s, d), 8);
//! // The worked example in the paper: d-mod-k routes pair (0, 63) on path 7.
//! assert_eq!(topo.dmodk_path(s, d).0, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fault;
mod ids;
mod iter;
mod paths;
pub mod render;
mod schedule;
mod spec;
mod subtree;
mod topology;

pub use error::SpecError;
pub use fault::FaultSet;
pub use ids::{DirectedLinkId, LinkDir, NodeId, PathId, PnId};
pub use paths::PathWalk;
pub use schedule::{FaultChange, FaultEvent, FaultSchedule};
pub use spec::XgftSpec;
pub use subtree::SubtreeCut;
pub use topology::{LinkEndpoints, Topology};

/// Maximum supported tree height `h`.
///
/// Fixed so that per-path scratch space lives on the stack. Real
/// installations rarely exceed 4 levels; the paper evaluates 2 and 3.
pub const MAX_HEIGHT: usize = 8;
