//! Dynamic fault timelines: links and switches that fail *and recover*
//! while a workload runs.
//!
//! A [`FaultSchedule`] generalizes the one-shot [`FaultSet`]: instead of
//! a static set sampled before the first cycle, it is a deterministic,
//! time-ordered sequence of [`FaultEvent`]s. The network state at any
//! instant `t` is obtained by replaying every event with `at <= t` onto
//! an empty [`FaultSet`] ([`FaultSchedule::state_at`]); simulators apply
//! the same events incrementally through a cursor so they never rebuild
//! the whole set mid-run.
//!
//! Two constructors cover the experiment space:
//!
//! * [`FaultSchedule::scripted`] — an explicit event list (e.g. "up-link
//!   `L` dies at cycle 4000 and is repaired at 6000"), for targeted
//!   reconvergence studies;
//! * [`FaultSchedule::poisson`] — every directed link independently
//!   alternates alive → dead → alive with exponentially distributed
//!   time-to-failure and time-to-repair, seeded and fully deterministic,
//!   for degradation-curve sweeps ("chaos" runs).

use crate::{DirectedLinkId, FaultSet, NodeId, Topology};

/// One state change of the fault timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultChange {
    /// A directed link goes down.
    LinkDown(DirectedLinkId),
    /// A directed link comes back up.
    LinkUp(DirectedLinkId),
    /// A whole switch goes down (all incident links with it).
    SwitchDown(NodeId),
    /// A whole switch comes back up (all incident links with it).
    SwitchUp(NodeId),
}

impl FaultChange {
    /// Apply this change to a fault set. Switch changes need the
    /// topology to enumerate incident links.
    pub fn apply(self, topo: &Topology, set: &mut FaultSet) {
        match self {
            FaultChange::LinkDown(l) => set.fail_link(l),
            FaultChange::LinkUp(l) => set.recover_link(l),
            FaultChange::SwitchDown(n) => set.fail_switch(topo, n),
            FaultChange::SwitchUp(n) => set.recover_switch(topo, n),
        }
    }
}

/// A [`FaultChange`] stamped with the cycle it takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the change takes effect (the link/switch is in its
    /// new state for the whole of cycle `at`).
    pub at: u64,
    /// What changes.
    pub change: FaultChange,
}

/// A deterministic timeline of fail and recover events.
///
/// Events are kept sorted by `at`; events sharing a cycle apply in their
/// submission order (so a scripted `LinkDown` followed by `LinkUp` at
/// the same cycle leaves the link up). `FaultSchedule::default()` is the
/// empty timeline and reproduces fault-free behaviour exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty (fault-free) timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schedule from an explicit event list. The list is sorted
    /// by time; ties keep their given order.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Lift a one-shot [`FaultSet`] into a schedule whose failures all
    /// strike at cycle 0 and never recover — the PR-1 static fault model
    /// as a special case.
    pub fn from_fault_set(set: &FaultSet) -> Self {
        let mut events: Vec<FaultEvent> = set
            .failed_links()
            .map(|l| FaultEvent {
                at: 0,
                change: FaultChange::LinkDown(l),
            })
            .collect();
        events.extend(set.failed_switches().iter().map(|&n| FaultEvent {
            at: 0,
            change: FaultChange::SwitchDown(n),
        }));
        FaultSchedule { events }
    }

    /// Sample an alternating fail/repair renewal process per directed
    /// link: time-to-failure is exponential with rate `fail_rate`
    /// (failures per link per cycle), time-to-repair is exponential with
    /// mean `mean_repair` cycles. Events beyond `horizon` are not
    /// generated. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `fail_rate` is not in `[0, 1]` or `mean_repair` is not
    /// positive and finite.
    pub fn poisson(
        topo: &Topology,
        fail_rate: f64,
        mean_repair: f64,
        horizon: u64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail_rate),
            "failure rate must be in [0, 1] per link per cycle"
        );
        assert!(
            mean_repair > 0.0 && mean_repair.is_finite(),
            "mean repair time must be positive and finite"
        );
        let mut events = Vec::new();
        if fail_rate > 0.0 {
            for id in 0..topo.num_links() {
                let link = DirectedLinkId(id);
                // Independent, decorrelated stream per link.
                let mut state = seed ^ (0xC4A0_5CED_u64 << 32) ^ (id as u64).wrapping_mul(0x9E37);
                let mut t = exp_draw(&mut state, fail_rate);
                while t < horizon as f64 {
                    events.push(FaultEvent {
                        at: t as u64,
                        change: FaultChange::LinkDown(link),
                    });
                    t += exp_draw(&mut state, 1.0 / mean_repair);
                    if t >= horizon as f64 {
                        break;
                    }
                    events.push(FaultEvent {
                        at: t as u64,
                        change: FaultChange::LinkUp(link),
                    });
                    t += exp_draw(&mut state, fail_rate);
                }
            }
        }
        Self::scripted(events)
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the timeline has no events (fault-free run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the last event, or `None` for an empty schedule.
    pub fn last_event_at(&self) -> Option<u64> {
        self.events.last().map(|e| e.at)
    }

    /// The events with `from <= at <= through`, as a slice of the sorted
    /// timeline (both bounds inclusive; an inverted window is empty).
    ///
    /// This is the export surface for incremental consumers that feed
    /// change *batches* elsewhere instead of replaying onto a local
    /// [`FaultSet`]: a controller that already committed every event
    /// through cycle `t0` fetches `events_between(t0 + 1, t1)` and hands
    /// the batch to its selection engine, reproducing
    /// [`FaultSchedule::apply_through`] window by window.
    pub fn events_between(&self, from: u64, through: u64) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at < from);
        let hi = self.events.partition_point(|e| e.at <= through);
        &self.events[lo..hi.max(lo)]
    }

    /// The fault state at cycle `t`: every event with `at <= t` replayed
    /// onto an empty set, in timeline order.
    pub fn state_at(&self, topo: &Topology, t: u64) -> FaultSet {
        let mut set = FaultSet::new();
        let mut cursor = 0;
        self.apply_through(topo, &mut set, &mut cursor, t);
        set
    }

    /// Incrementally apply every not-yet-applied event with `at <= t` to
    /// `set`, advancing `cursor` (an index into [`FaultSchedule::events`],
    /// initially 0). Returns the number of events applied. Feeding
    /// monotonically non-decreasing `t` values reproduces
    /// [`FaultSchedule::state_at`] at every step.
    pub fn apply_through(
        &self,
        topo: &Topology,
        set: &mut FaultSet,
        cursor: &mut usize,
        t: u64,
    ) -> usize {
        let start = *cursor;
        while let Some(e) = self.events.get(*cursor) {
            if e.at > t {
                break;
            }
            e.change.apply(topo, set);
            *cursor += 1;
        }
        *cursor - start
    }
}

/// Exponential draw with the crate-local SplitMix64 generator (keeps the
/// crate dependency-free, like [`FaultSet::sample`]).
fn exp_draw(state: &mut u64, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    // Map (0, 1]: avoid ln(0).
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PnId, XgftSpec};

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn empty_schedule_is_fault_free_forever() {
        let t = fig3();
        let s = FaultSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.last_event_at(), None);
        for at in [0, 1, 1_000_000] {
            assert!(s.state_at(&t, at).is_empty());
        }
    }

    #[test]
    fn scripted_fail_then_recover() {
        let t = fig3();
        let link = t.up_link(2, 0, 0);
        let s = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 600,
                change: FaultChange::LinkUp(link),
            },
            FaultEvent {
                at: 400,
                change: FaultChange::LinkDown(link),
            },
        ]);
        assert_eq!(s.events()[0].at, 400, "events are sorted by time");
        assert!(s.state_at(&t, 399).is_empty());
        assert!(s.state_at(&t, 400).is_link_failed(link));
        assert!(s.state_at(&t, 599).is_link_failed(link));
        assert!(s.state_at(&t, 600).is_empty());
        assert_eq!(s.last_event_at(), Some(600));
    }

    #[test]
    fn same_cycle_ties_apply_in_submission_order() {
        let t = fig3();
        let link = t.up_link(1, 0, 0);
        let s = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 5,
                change: FaultChange::LinkDown(link),
            },
            FaultEvent {
                at: 5,
                change: FaultChange::LinkUp(link),
            },
        ]);
        assert!(s.state_at(&t, 5).is_empty());
    }

    #[test]
    fn from_fault_set_reproduces_the_static_model() {
        let t = fig3();
        let mut set = FaultSet::new();
        set.fail_link(t.up_link(2, 0, 0));
        set.fail_switch(&t, NodeId { level: 3, rank: 1 });
        let s = FaultSchedule::from_fault_set(&set);
        assert_eq!(s.state_at(&t, 0), set);
        assert_eq!(s.state_at(&t, u64::MAX), set);
    }

    #[test]
    fn prefix_property_over_random_schedules() {
        // Property: for random Poisson schedules, the state at time t
        // equals replaying exactly the event prefix with `at <= t` by
        // hand — probed at every event timestamp, one cycle either
        // side of it, and beyond the horizon. This pins the boundary
        // semantics (an event is visible at its own timestamp) against
        // both `state_at` and the incremental cursor replay.
        let t = fig3();
        for (seed, rate, repair) in [
            (1u64, 5e-5, 200.0),
            (2, 2e-4, 500.0),
            (3, 1e-3, 50.0),
            (4, 1e-3, 5_000.0),
        ] {
            let s = FaultSchedule::poisson(&t, rate, repair, 10_000, seed);
            assert!(!s.is_empty(), "seed {seed}: schedule must fire");
            let mut probes: Vec<u64> = s
                .events()
                .iter()
                .flat_map(|e| [e.at.saturating_sub(1), e.at, e.at + 1])
                .collect();
            probes.extend([0, 9_999, 10_000, 20_000]);
            probes.sort_unstable();
            probes.dedup();
            let mut live = FaultSet::new();
            let mut cursor = 0;
            for &at in &probes {
                let mut manual = FaultSet::new();
                for e in s.events().iter().filter(|e| e.at <= at) {
                    e.change.apply(&t, &mut manual);
                }
                assert_eq!(s.state_at(&t, at), manual, "seed {seed} cycle {at}");
                // The incremental cursor replay walks the same prefix.
                s.apply_through(&t, &mut live, &mut cursor, at);
                assert_eq!(live, manual, "cursor divergence, seed {seed} cycle {at}");
            }
            assert_eq!(cursor, s.events().len(), "all events consumed at the end");
        }
    }

    #[test]
    fn events_between_windows_tile_the_timeline() {
        let t = fig3();
        let s = FaultSchedule::poisson(&t, 1e-3, 200.0, 5_000, 9);
        assert!(!s.is_empty());
        // Consecutive inclusive windows concatenate to the full prefix.
        let mut seen = 0usize;
        let mut from = 0u64;
        for through in (0..6_000).step_by(250) {
            let w = s.events_between(from, through);
            for e in w {
                assert!(e.at >= from && e.at <= through);
                assert_eq!(*e, s.events()[seen], "window order == timeline order");
                seen += 1;
            }
            from = through + 1;
        }
        assert_eq!(seen, s.events().len(), "windows must tile every event");
        // Boundary inclusivity: a window ending exactly on an event's
        // cycle contains it; the next window does not repeat it.
        let at = s.events()[0].at;
        assert!(s.events_between(at, at).iter().all(|e| e.at == at));
        assert!(!s.events_between(at, at).is_empty());
        assert!(s.events_between(at + 1, at).is_empty(), "inverted window");
    }

    #[test]
    fn cursor_replay_matches_state_at() {
        let t = fig3();
        let s = FaultSchedule::poisson(&t, 1e-4, 500.0, 20_000, 42);
        assert!(!s.is_empty(), "rate 1e-4 over 20k cycles must fire");
        let mut live = FaultSet::new();
        let mut cursor = 0;
        for at in (0..21_000).step_by(137) {
            s.apply_through(&t, &mut live, &mut cursor, at);
            assert_eq!(live, s.state_at(&t, at), "divergence at cycle {at}");
        }
    }

    #[test]
    fn poisson_is_deterministic_and_rate_scaled() {
        let t = fig3();
        let a = FaultSchedule::poisson(&t, 1e-4, 500.0, 50_000, 7);
        let b = FaultSchedule::poisson(&t, 1e-4, 500.0, 50_000, 7);
        assert_eq!(a, b);
        let c = FaultSchedule::poisson(&t, 1e-4, 500.0, 50_000, 8);
        assert_ne!(a, c);
        assert!(FaultSchedule::poisson(&t, 0.0, 500.0, 50_000, 7).is_empty());
        let busier = FaultSchedule::poisson(&t, 1e-3, 500.0, 50_000, 7);
        assert!(busier.events().len() > a.events().len());
        // Every event lands inside the horizon, downs and ups alternate
        // per link, and the timeline is sorted.
        assert!(a.events().iter().all(|e| e.at < 50_000));
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn switch_events_toggle_whole_switches() {
        let t = fig3();
        let top = NodeId { level: 3, rank: 0 };
        let s = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 10,
                change: FaultChange::SwitchDown(top),
            },
            FaultEvent {
                at: 20,
                change: FaultChange::SwitchUp(top),
            },
        ]);
        let mid = s.state_at(&t, 15);
        assert!(mid.is_switch_failed(top));
        assert_eq!(mid.num_failed_links(), 8);
        assert_eq!(mid.num_surviving(&t, PnId(0), PnId(63)), 7);
        assert!(s.state_at(&t, 20).is_empty());
    }
}
