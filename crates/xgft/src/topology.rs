//! Precomputed topology object: node counts, labelling, link enumeration.

use crate::{DirectedLinkId, LinkDir, NodeId, PnId, XgftSpec, MAX_HEIGHT};

/// A fully precomputed XGFT topology.
///
/// The structure is implicit: nodes are `(level, rank)` pairs and links
/// are dense integers; nothing proportional to the node count is stored,
/// so cloning and sharing are cheap. All conversions between ranks,
/// label digits, ports and link ids are O(h).
#[derive(Debug, Clone)]
pub struct Topology {
    spec: XgftSpec,
    h: usize,
    /// `w_prod[k] = Π_{i=1..k} w_i` for `k in 0..=h` (`w_prod[0] = 1`).
    w_prod: Vec<u64>,
    /// `m_prod[k] = Π_{i=1..k} m_i` for `k in 0..=h` (`m_prod[0] = 1`).
    m_prod: Vec<u64>,
    /// Number of nodes at each level `0..=h`.
    level_counts: Vec<u32>,
    /// Base id for up-links terminating at level `l` (index `1..=h`;
    /// index 0 unused).
    up_base: Vec<u32>,
    /// Base id for down-links originating at level `l` (index `1..=h`).
    down_base: Vec<u32>,
    num_links: u32,
}

/// Endpoints of a directed link, for inspection and for building the
/// explicit port graph the flit-level simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEndpoints {
    /// Sending node.
    pub from: NodeId,
    /// Port index on the sending node.
    pub from_port: u32,
    /// Receiving node.
    pub to: NodeId,
    /// Port index on the receiving node.
    pub to_port: u32,
    /// Whether the link climbs or descends the tree.
    pub dir: LinkDir,
    /// Tree level of the upper endpoint (`1..=h`).
    pub level: u8,
}

impl Topology {
    /// Precompute all products and link bases for a spec.
    pub fn new(spec: XgftSpec) -> Self {
        let h = spec.height();
        let mut w_prod = vec![1u64; h + 1];
        let mut m_prod = vec![1u64; h + 1];
        for i in 1..=h {
            w_prod[i] = w_prod[i - 1] * spec.w_at(i) as u64;
            m_prod[i] = m_prod[i - 1] * spec.m_at(i) as u64;
        }
        let mut level_counts = vec![0u32; h + 1];
        for l in 0..=h {
            // Π_{i>l} m_i · Π_{i<=l} w_i
            let c = (m_prod[h] / m_prod[l]) * w_prod[l];
            level_counts[l] = c as u32;
        }
        let mut up_base = vec![0u32; h + 1];
        let mut down_base = vec![0u32; h + 1];
        let mut next: u64 = 0;
        for l in 1..=h {
            let per_dir = level_counts[l - 1] as u64 * spec.w_at(l) as u64;
            up_base[l] = next as u32;
            next += per_dir;
            down_base[l] = next as u32;
            next += per_dir;
        }
        Topology {
            spec,
            h,
            w_prod,
            m_prod,
            level_counts,
            up_base,
            down_base,
            num_links: next as u32,
        }
    }

    /// The parameter set this topology was built from.
    pub fn spec(&self) -> &XgftSpec {
        &self.spec
    }

    /// Tree height `h`.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Number of processing nodes `N = Π m_i`.
    pub fn num_pns(&self) -> u32 {
        self.m_prod[self.h] as u32
    }

    /// Number of nodes at a level (`0 ..= h`).
    pub fn nodes_at_level(&self, level: usize) -> u32 {
        self.level_counts[level]
    }

    /// Total number of *directed* links.
    pub fn num_links(&self) -> u32 {
        self.num_links
    }

    /// `Π_{i=1..k} w_i` — the number of shortest paths between PNs whose
    /// NCA sits at level `k` (Property 1 of the paper), and the number of
    /// top-level switches of a height-`k` sub-XGFT.
    pub fn w_prod(&self, k: usize) -> u64 {
        self.w_prod[k]
    }

    /// `Π_{i=1..k} m_i` — the number of processing nodes of a height-`k`
    /// sub-XGFT.
    pub fn m_prod(&self, k: usize) -> u64 {
        self.m_prod[k]
    }

    /// Number of up (parent-facing) ports of a node at `level`.
    pub fn up_ports(&self, level: usize) -> u32 {
        if level == self.h {
            0
        } else {
            self.spec.w_at(level + 1)
        }
    }

    /// Number of down (child-facing) ports of a node at `level`.
    pub fn down_ports(&self, level: usize) -> u32 {
        if level == 0 {
            0
        } else {
            self.spec.m_at(level)
        }
    }

    /// Port index of the first down port of a node at `level`, matching
    /// the paper's numbering: up ports come first, except at the top
    /// level where there are no up ports.
    pub fn down_port_offset(&self, level: usize) -> u32 {
        self.up_ports(level)
    }

    /// Total ports of a node at `level`.
    pub fn ports_at_level(&self, level: usize) -> u32 {
        self.up_ports(level) + self.down_ports(level)
    }

    // ------------------------------------------------------------------
    // Labelling.
    // ------------------------------------------------------------------

    /// Radix of label digit `i` (1-based) for a node at `level`:
    /// `m_i` above the level, `w_i` at or below it.
    fn radix(&self, level: usize, i: usize) -> u64 {
        if i > level {
            self.spec.m_at(i) as u64
        } else {
            self.spec.w_at(i) as u64
        }
    }

    /// Write the label digits `(a_1 .. a_h)` of a node into `out`
    /// (`out[i-1] = a_i`; note the paper prints tuples most-significant
    /// first as `(l, a_h, …, a_1)`).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `out` is shorter than the
    /// tree height or `node` is not a node of this topology (level or
    /// rank out of range) — previously a silent index panic or a
    /// debug-only assertion.
    pub fn digits_of(&self, node: NodeId, out: &mut [u32]) {
        assert!(
            out.len() >= self.h,
            "digit buffer holds {} entries but the tree has height {}",
            out.len(),
            self.h
        );
        assert!(
            (node.level as usize) <= self.h,
            "node level {} exceeds the tree height {}",
            node.level,
            self.h
        );
        let mut r = node.rank as u64;
        for i in 1..=self.h {
            let radix = self.radix(node.level as usize, i);
            out[i - 1] = (r % radix) as u32;
            r /= radix;
        }
        assert!(
            r == 0,
            "rank {} out of range for a level-{} node",
            node.rank,
            node.level
        );
    }

    /// Rank of the node at `level` with label digits `digits[i-1] = a_i`.
    pub fn node_from_digits(&self, level: usize, digits: &[u32]) -> NodeId {
        debug_assert!(digits.len() >= self.h);
        let mut r: u64 = 0;
        for i in (1..=self.h).rev() {
            let radix = self.radix(level, i);
            debug_assert!((digits[i - 1] as u64) < radix);
            r = r * radix + digits[i - 1] as u64;
        }
        NodeId {
            level: level as u8,
            rank: r as u32,
        }
    }

    /// Label digit `a_i` of a processing node (radix `m_i`).
    pub fn pn_digit(&self, pn: PnId, i: usize) -> u32 {
        ((pn.0 as u64 / self.m_prod[i - 1]) % self.spec.m_at(i) as u64) as u32
    }

    // ------------------------------------------------------------------
    // Adjacency.
    // ------------------------------------------------------------------

    /// The parent reached from `node` through up port `port`.
    pub fn parent(&self, node: NodeId, port: u32) -> NodeId {
        let l = node.level as usize;
        assert!(l < self.h, "top-level nodes have no parents");
        assert!(port < self.up_ports(l));
        let mut digits = [0u32; MAX_HEIGHT];
        self.digits_of(node, &mut digits);
        digits[l] = port; // digit at position l+1 becomes the port choice
        self.node_from_digits(l + 1, &digits)
    }

    /// The child reached from `node` through child index `child`
    /// (`0 .. m_level`); the corresponding port is
    /// `down_port_offset(level) + child`.
    pub fn child(&self, node: NodeId, child: u32) -> NodeId {
        let l = node.level as usize;
        assert!(l >= 1, "processing nodes have no children");
        assert!(child < self.down_ports(l));
        let mut digits = [0u32; MAX_HEIGHT];
        self.digits_of(node, &mut digits);
        digits[l - 1] = child; // digit at position l becomes the child index
        self.node_from_digits(l - 1, &digits)
    }

    // ------------------------------------------------------------------
    // Link enumeration.
    // ------------------------------------------------------------------

    /// Id of the up-link from the level-`l-1` node `child_rank` through
    /// its up port `port` (terminating at level `l`).
    pub fn up_link(&self, l: usize, child_rank: u32, port: u32) -> DirectedLinkId {
        debug_assert!(l >= 1 && l <= self.h);
        debug_assert!(port < self.spec.w_at(l));
        DirectedLinkId(self.up_base[l] + child_rank * self.spec.w_at(l) + port)
    }

    /// Id of the down-link from the level-`l` node `parent_rank` to its
    /// child with index `child` (terminating at level `l-1`).
    pub fn down_link(&self, l: usize, parent_rank: u32, child: u32) -> DirectedLinkId {
        debug_assert!(l >= 1 && l <= self.h);
        debug_assert!(child < self.spec.m_at(l));
        DirectedLinkId(self.down_base[l] + parent_rank * self.spec.m_at(l) + child)
    }

    /// Tree level (of the upper endpoint) and direction of a link id.
    pub fn link_level_dir(&self, link: DirectedLinkId) -> (u8, LinkDir) {
        let id = link.0;
        for l in (1..=self.h).rev() {
            if id >= self.down_base[l] {
                return (l as u8, LinkDir::Down);
            }
            if id >= self.up_base[l] {
                return (l as u8, LinkDir::Up);
            }
        }
        unreachable!("link id {id} out of range")
    }

    /// Full endpoint description of a link id.
    pub fn endpoints(&self, link: DirectedLinkId) -> LinkEndpoints {
        let (level, dir) = self.link_level_dir(link);
        let l = level as usize;
        match dir {
            LinkDir::Up => {
                let rel = link.0 - self.up_base[l];
                let w = self.spec.w_at(l);
                let child_rank = rel / w;
                let port = rel % w;
                let from = NodeId {
                    level: (l - 1) as u8,
                    rank: child_rank,
                };
                let to = self.parent(from, port);
                // The parent receives on the down port for this child's
                // index, which is the child's digit at position l.
                let mut digits = [0u32; MAX_HEIGHT];
                self.digits_of(from, &mut digits);
                let to_port = self.down_port_offset(l) + digits[l - 1];
                LinkEndpoints {
                    from,
                    from_port: port,
                    to,
                    to_port,
                    dir,
                    level,
                }
            }
            LinkDir::Down => {
                let rel = link.0 - self.down_base[l];
                let m = self.spec.m_at(l);
                let parent_rank = rel / m;
                let child = rel % m;
                let from = NodeId {
                    level: l as u8,
                    rank: parent_rank,
                };
                let to = self.child(from, child);
                // The child receives on the up port equal to the parent's
                // digit at position l.
                let mut digits = [0u32; MAX_HEIGHT];
                self.digits_of(from, &mut digits);
                let to_port = digits[l - 1];
                let from_port = self.down_port_offset(l) + child;
                LinkEndpoints {
                    from,
                    from_port,
                    to,
                    to_port,
                    dir,
                    level,
                }
            }
        }
    }

    /// The paper's left-to-right position of a node within its level, as
    /// induced by the recursive construction: the digits above the
    /// node's level (sub-tree selectors, radix `m_i`) are most
    /// significant, and among the `w`-radix digits `a_1` is most
    /// significant (`XGFT(h)` wires sub-top-switch `x` to top switches
    /// `w_h·x .. w_h·(x+1)`, so each recursion step appends the *new*
    /// digit as the least significant one).
    ///
    /// For processing nodes this equals the rank; for switches it is a
    /// permutation of the rank space used only for display and for
    /// relating path indices to "leftmost top-level switch" order.
    pub fn construction_number(&self, node: NodeId) -> u64 {
        let l = node.level as usize;
        let mut digits = [0u32; MAX_HEIGHT];
        self.digits_of(node, &mut digits);
        let mut c: u64 = 0;
        for i in ((l + 1)..=self.h).rev() {
            c = c * self.spec.m_at(i) as u64 + digits[i - 1] as u64;
        }
        for i in 1..=l {
            c = c * self.spec.w_at(i) as u64 + digits[i - 1] as u64;
        }
        c
    }

    /// The link leaving `node` through output port `port`.
    pub fn link_from_port(&self, node: NodeId, port: u32) -> DirectedLinkId {
        let l = node.level as usize;
        let ups = self.up_ports(l);
        if port < ups {
            self.up_link(l + 1, node.rank, port)
        } else {
            let child = port - ups;
            self.down_link(l, node.rank, child)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn level_counts_match_formula() {
        let t = fig3();
        // Level l has (Π_{i>l} m_i)·(Π_{i<=l} w_i) nodes.
        assert_eq!(t.nodes_at_level(0), 64);
        assert_eq!(t.nodes_at_level(1), 16); // 4·4·1
        assert_eq!(t.nodes_at_level(2), 8); // 4·1·2
        assert_eq!(t.nodes_at_level(3), 8); // 1·2·4
        assert_eq!(t.num_pns(), 64);
    }

    #[test]
    fn paper_topologies_node_counts() {
        let t = Topology::new(XgftSpec::m_port_n_tree(24, 3).unwrap());
        assert_eq!(t.num_pns(), 3456); // TACC-Ranger-like 24-port 3-tree
        assert_eq!(t.nodes_at_level(3), 144); // top switches
        assert_eq!(t.w_prod(3), 144); // paper: 144 paths between far nodes
        let t = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
        assert_eq!(t.num_pns(), 32);
        assert_eq!(t.nodes_at_level(2), 4);
    }

    #[test]
    fn digit_roundtrip_all_levels() {
        let t = fig3();
        let mut digits = [0u32; MAX_HEIGHT];
        for level in 0..=t.height() {
            for rank in 0..t.nodes_at_level(level) {
                let n = NodeId {
                    level: level as u8,
                    rank,
                };
                t.digits_of(n, &mut digits);
                assert_eq!(t.node_from_digits(level, &digits), n);
            }
        }
    }

    #[test]
    fn pn_digits_match_generic_digits() {
        let t = fig3();
        let mut digits = [0u32; MAX_HEIGHT];
        for p in 0..t.num_pns() {
            t.digits_of(NodeId::pn(PnId(p)), &mut digits);
            for i in 1..=t.height() {
                assert_eq!(t.pn_digit(PnId(p), i), digits[i - 1]);
            }
        }
    }

    #[test]
    fn parent_child_inverse() {
        let t = fig3();
        let mut digits = [0u32; MAX_HEIGHT];
        for level in 0..t.height() {
            for rank in 0..t.nodes_at_level(level) {
                let n = NodeId {
                    level: level as u8,
                    rank,
                };
                for port in 0..t.up_ports(level) {
                    let p = t.parent(n, port);
                    assert_eq!(p.level as usize, level + 1);
                    // Descending through this node's own digit returns here.
                    t.digits_of(n, &mut digits);
                    let back = t.child(p, digits[level]);
                    assert_eq!(back, n);
                }
            }
        }
    }

    #[test]
    fn ports_per_level_match_paper() {
        // XGFT(3; 3,2,2; 2,2,3) style check on Figure 2(b)'s rule:
        // level-i nodes have w_{i+1} up ports then m_i down ports.
        let t = Topology::new(XgftSpec::new(&[3, 2, 2], &[2, 2, 3]).unwrap());
        assert_eq!(t.up_ports(0), 2);
        assert_eq!(t.down_ports(0), 0);
        assert_eq!(t.up_ports(1), 2);
        assert_eq!(t.down_ports(1), 3);
        assert_eq!(t.down_port_offset(1), 2);
        assert_eq!(t.up_ports(3), 0);
        assert_eq!(t.down_ports(3), 2);
        assert_eq!(t.down_port_offset(3), 0);
    }

    #[test]
    fn link_ids_are_dense_and_invertible() {
        let t = fig3();
        let mut seen = vec![false; t.num_links() as usize];
        for l in 1..=t.height() {
            for child in 0..t.nodes_at_level(l - 1) {
                for port in 0..t.spec().w_at(l) {
                    let id = t.up_link(l, child, port);
                    assert!(!seen[id.0 as usize]);
                    seen[id.0 as usize] = true;
                    let e = t.endpoints(id);
                    assert_eq!(e.dir, LinkDir::Up);
                    assert_eq!(e.level as usize, l);
                    assert_eq!(
                        e.from,
                        NodeId {
                            level: (l - 1) as u8,
                            rank: child
                        }
                    );
                    assert_eq!(e.from_port, port);
                }
            }
            for parent in 0..t.nodes_at_level(l) {
                for child in 0..t.spec().m_at(l) {
                    let id = t.down_link(l, parent, child);
                    assert!(!seen[id.0 as usize]);
                    seen[id.0 as usize] = true;
                    let e = t.endpoints(id);
                    assert_eq!(e.dir, LinkDir::Down);
                    assert_eq!(
                        e.from,
                        NodeId {
                            level: l as u8,
                            rank: parent
                        }
                    );
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "link id space has holes");
    }

    #[test]
    fn endpoints_ports_are_consistent() {
        // For every link: following `link_from_port(from, from_port)`
        // returns the same id, and the reverse port wiring matches.
        let t = Topology::new(XgftSpec::new(&[2, 3], &[2, 2]).unwrap());
        for id in 0..t.num_links() {
            let e = t.endpoints(DirectedLinkId(id));
            assert_eq!(t.link_from_port(e.from, e.from_port), DirectedLinkId(id));
            // The reverse direction link exists and mirrors the ports.
            let rev = t.link_from_port(e.to, e.to_port);
            let re = t.endpoints(rev);
            assert_eq!(re.to, e.from);
            assert_eq!(re.to_port, e.from_port);
            assert_eq!(re.from, e.to);
            assert_eq!(re.from_port, e.to_port);
        }
    }
}
