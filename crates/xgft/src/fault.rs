//! Link- and switch-failure modelling.
//!
//! A [`FaultSet`] records which *directed* links of a topology are down.
//! Whole-switch failures are expressed through their incident links (a
//! dead switch can neither receive nor forward), so every survivability
//! question reduces to "does this path avoid every failed link" — which
//! [`Topology::walk_path`] answers without allocating.
//!
//! The set is independent of any particular topology object: it stores a
//! growable bitmap over link ids plus the list of failed switches, so
//! [`FaultSet::default`] is the fault-free network and adds no cost to
//! fault-free code paths.

use crate::{DirectedLinkId, NodeId, PathId, PnId, Topology};

/// A set of failed directed links and failed switches.
///
/// `FaultSet::default()` is empty and reproduces fault-free behaviour
/// exactly: every query answers "alive".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    /// Bitmap over directed link ids; lazily grown so an empty set
    /// needs no topology to construct.
    failed: Vec<u64>,
    num_failed_links: u32,
    /// Switches failed wholesale (their incident links are also in the
    /// bitmap); kept sorted for queries and reporting.
    failed_switches: Vec<NodeId>,
}

impl FaultSet {
    /// The empty (fault-free) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample failures independently: each directed link fails with
    /// probability `link_rate`, each switch (levels `1..=h`) with
    /// probability `switch_rate`. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn sample(topo: &Topology, link_rate: f64, switch_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&link_rate) && (0.0..=1.0).contains(&switch_rate),
            "failure rates must be in [0, 1]"
        );
        let mut set = FaultSet::new();
        let mut state = seed ^ 0x0FA1_75E7_5EED;
        for id in 0..topo.num_links() {
            if unit_f64(splitmix64(&mut state)) < link_rate {
                set.fail_link(DirectedLinkId(id));
            }
        }
        for level in 1..=topo.height() {
            for rank in 0..topo.nodes_at_level(level) {
                if unit_f64(splitmix64(&mut state)) < switch_rate {
                    set.fail_switch(
                        topo,
                        NodeId {
                            level: level as u8,
                            rank,
                        },
                    );
                }
            }
        }
        set
    }

    /// Mark one directed link as failed. Idempotent.
    pub fn fail_link(&mut self, link: DirectedLinkId) {
        let (word, bit) = (link.0 as usize / 64, link.0 % 64);
        if word >= self.failed.len() {
            self.failed.resize(word + 1, 0);
        }
        if self.failed[word] & (1 << bit) == 0 {
            self.failed[word] |= 1 << bit;
            self.num_failed_links += 1;
        }
    }

    /// Mark a whole switch as failed: every link into or out of it goes
    /// down. Idempotent. Works for any node level (failing a level-0
    /// node cuts the processing node off).
    pub fn fail_switch(&mut self, topo: &Topology, node: NodeId) {
        if let Err(i) = self.failed_switches.binary_search(&node) {
            self.failed_switches.insert(i, node);
        }
        for id in 0..topo.num_links() {
            let e = topo.endpoints(DirectedLinkId(id));
            if e.from == node || e.to == node {
                self.fail_link(DirectedLinkId(id));
            }
        }
    }

    /// Mark one directed link as repaired. Idempotent. Clears the bit
    /// regardless of why it was set, so recovering a link that went down
    /// as part of a switch failure brings that cable back even while the
    /// switch itself stays listed as failed.
    pub fn recover_link(&mut self, link: DirectedLinkId) {
        let (word, bit) = (link.0 as usize / 64, link.0 % 64);
        if let Some(w) = self.failed.get_mut(word) {
            if *w & (1 << bit) != 0 {
                *w &= !(1 << bit);
                self.num_failed_links -= 1;
            }
        }
        // Trim trailing zero words so the derived equality stays
        // semantic: a fully recovered set equals `FaultSet::default()`.
        while self.failed.last() == Some(&0) {
            self.failed.pop();
        }
    }

    /// Mark a whole switch as repaired: it is removed from the failed
    /// list and every link into or out of it comes back up. Idempotent.
    ///
    /// Links that were *also* failed individually come back too — the
    /// set does not track failure causes; callers needing overlapping
    /// link and switch outages replay their events through a
    /// [`FaultSchedule`](crate::FaultSchedule) in timeline order.
    pub fn recover_switch(&mut self, topo: &Topology, node: NodeId) {
        if let Ok(i) = self.failed_switches.binary_search(&node) {
            self.failed_switches.remove(i);
        }
        for id in 0..topo.num_links() {
            let e = topo.endpoints(DirectedLinkId(id));
            if e.from == node || e.to == node {
                self.recover_link(DirectedLinkId(id));
            }
        }
    }

    /// Whether a directed link is failed.
    pub fn is_link_failed(&self, link: DirectedLinkId) -> bool {
        self.failed
            .get(link.0 as usize / 64)
            .is_some_and(|w| w & (1 << (link.0 % 64)) != 0)
    }

    /// Whether a switch was failed wholesale (individual-link failures
    /// that happen to isolate a switch do not count).
    pub fn is_switch_failed(&self, node: NodeId) -> bool {
        self.failed_switches.binary_search(&node).is_ok()
    }

    /// Number of failed directed links (incident links of failed
    /// switches included).
    pub fn num_failed_links(&self) -> u32 {
        self.num_failed_links
    }

    /// The switches failed wholesale, sorted.
    pub fn failed_switches(&self) -> &[NodeId] {
        &self.failed_switches
    }

    /// Whether the set is empty (fault-free network).
    pub fn is_empty(&self) -> bool {
        self.num_failed_links == 0 && self.failed_switches.is_empty()
    }

    /// Iterate the failed directed link ids in ascending order.
    pub fn failed_links(&self) -> impl Iterator<Item = DirectedLinkId> + '_ {
        self.failed.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| DirectedLinkId((w * 64 + b) as u32))
        })
    }

    /// Whether a path of the canonical enumeration avoids every failed
    /// link. The empty path (`s == d`) always survives.
    pub fn path_survives(&self, topo: &Topology, s: PnId, d: PnId, path: PathId) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut alive = true;
        topo.walk_path(s, d, path, |link| alive &= !self.is_link_failed(link));
        alive
    }

    /// Append the surviving path ids of the pair to `out` (cleared
    /// first), in canonical enumeration order.
    pub fn fill_surviving(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        out.extend(
            topo.all_paths(s, d)
                .filter(|&p| self.path_survives(topo, s, d, p)),
        );
    }

    /// Number of surviving shortest paths of the pair.
    pub fn num_surviving(&self, topo: &Topology, s: PnId, d: PnId) -> u64 {
        topo.all_paths(s, d)
            .filter(|&p| self.path_survives(topo, s, d, p))
            .count() as u64
    }

    /// Whether at least one shortest path of the pair survives.
    pub fn connected(&self, topo: &Topology, s: PnId, d: PnId) -> bool {
        topo.all_paths(s, d)
            .any(|p| self.path_survives(topo, s, d, p))
    }
}

/// SplitMix64 step — keeps this crate free of external dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn default_is_fault_free() {
        let t = fig3();
        let f = FaultSet::default();
        assert!(f.is_empty());
        assert_eq!(f.num_failed_links(), 0);
        for id in 0..t.num_links() {
            assert!(!f.is_link_failed(DirectedLinkId(id)));
        }
        let (s, d) = (PnId(0), PnId(63));
        assert_eq!(f.num_surviving(&t, s, d), t.num_paths(s, d));
        assert!(f.connected(&t, s, d));
    }

    #[test]
    fn failing_a_link_kills_exactly_the_paths_through_it() {
        let t = fig3();
        let (s, d) = (PnId(0), PnId(63));
        // Fail the first up-link of the d-mod-k path (PN 0's only cable
        // climbs through up port 0 — but w_1 = 1, so *every* path of the
        // pair uses it).
        let mut f = FaultSet::new();
        f.fail_link(t.up_link(1, 0, 0));
        assert_eq!(f.num_failed_links(), 1);
        assert_eq!(f.num_surviving(&t, s, d), 0);
        assert!(!f.connected(&t, s, d));
        // The reverse pair is unaffected: down-links are distinct ids.
        assert_eq!(f.num_surviving(&t, d, s), t.num_paths(d, s));
    }

    #[test]
    fn level2_link_failure_halves_the_paths() {
        // Paths of (0, 63) split 4/4 over the two level-2 up-links of
        // switch (1, 0…0); killing one leaves 4 survivors.
        let t = fig3();
        let (s, d) = (PnId(0), PnId(63));
        let mut f = FaultSet::new();
        f.fail_link(t.up_link(2, 0, 0));
        assert_eq!(f.num_surviving(&t, s, d), 4);
        let mut out = Vec::new();
        f.fill_surviving(&t, s, d, &mut out);
        assert_eq!(out.len(), 4);
        for p in out {
            assert!(f.path_survives(&t, s, d, p));
        }
    }

    #[test]
    fn switch_failure_cuts_all_incident_links() {
        let t = fig3();
        let top = NodeId { level: 3, rank: 0 };
        let mut f = FaultSet::new();
        f.fail_switch(&t, top);
        assert!(f.is_switch_failed(top));
        assert!(!f.is_switch_failed(NodeId { level: 3, rank: 1 }));
        // A top switch has m_3 = 4 children: 4 up-links in, 4 down out.
        assert_eq!(f.num_failed_links(), 8);
        // Path 0 of (0, 63) goes through top switch 0 (construction
        // number = path id); it is dead, path 1 survives.
        assert!(!f.path_survives(&t, PnId(0), PnId(63), PathId(0)));
        assert!(f.path_survives(&t, PnId(0), PnId(63), PathId(1)));
        assert_eq!(f.num_surviving(&t, PnId(0), PnId(63)), 7);
    }

    #[test]
    fn sampling_is_deterministic_and_rate_scaled() {
        let t = fig3();
        let a = FaultSet::sample(&t, 0.05, 0.0, 42);
        let b = FaultSet::sample(&t, 0.05, 0.0, 42);
        assert_eq!(a, b);
        let c = FaultSet::sample(&t, 0.05, 0.0, 43);
        assert_ne!(a, c, "different seeds should give different draws");
        // Rate 0 is empty; rate 1 fails everything.
        assert!(FaultSet::sample(&t, 0.0, 0.0, 1).is_empty());
        let all = FaultSet::sample(&t, 1.0, 0.0, 1);
        assert_eq!(all.num_failed_links(), t.num_links());
        // 5% of 224 links ≈ 11; allow generous slack.
        assert!(a.num_failed_links() >= 2 && a.num_failed_links() <= 30);
        assert_eq!(a.failed_links().count() as u32, a.num_failed_links());
    }

    #[test]
    fn recovery_restores_fault_free_behaviour() {
        let t = fig3();
        let mut f = FaultSet::new();
        let link = t.up_link(2, 0, 0);
        f.fail_link(link);
        f.recover_link(link);
        assert!(f.is_empty());
        assert_eq!(f, FaultSet::default());
        // Recovering an alive link is a no-op.
        f.recover_link(link);
        assert!(f.is_empty());

        let top = NodeId { level: 3, rank: 0 };
        f.fail_switch(&t, top);
        assert_eq!(f.num_failed_links(), 8);
        f.recover_switch(&t, top);
        assert!(f.is_empty());
        assert!(!f.is_switch_failed(top));
    }

    #[test]
    fn self_pair_always_survives() {
        let t = fig3();
        let f = FaultSet::sample(&t, 1.0, 1.0, 7);
        assert!(f.connected(&t, PnId(5), PnId(5)));
        assert!(f.path_survives(&t, PnId(5), PnId(5), PathId(0)));
    }

    #[test]
    fn surviving_and_failed_partition_the_enumeration() {
        // Property: for random topologies, fault sets and SD pairs, the
        // surviving paths and the failed paths are disjoint classes
        // whose union is the full canonical enumeration, and
        // `num_surviving` / `connected` agree with the partition.
        let specs = [
            XgftSpec::new(&[4, 4], &[1, 4]).unwrap(),
            XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap(),
            XgftSpec::new(&[2, 2, 2], &[2, 2, 2]).unwrap(),
            XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap(),
        ];
        let mut rng = 0xDEAD_BEEFu64;
        for spec in specs {
            let t = Topology::new(spec);
            for case in 0u64..8 {
                let link_rate = [0.0, 0.02, 0.1, 0.5][case as usize % 4];
                let switch_rate = if case % 2 == 0 { 0.0 } else { 0.05 };
                let f = FaultSet::sample(&t, link_rate, switch_rate, case ^ 0x5EED);
                for _ in 0..16 {
                    let s = PnId((splitmix64(&mut rng) % t.num_pns() as u64) as u32);
                    let d = PnId((splitmix64(&mut rng) % t.num_pns() as u64) as u32);
                    let x = t.num_paths(s, d);
                    let mut surviving = Vec::new();
                    f.fill_surviving(&t, s, d, &mut surviving);
                    let failed: Vec<PathId> = t
                        .all_paths(s, d)
                        .filter(|&p| !f.path_survives(&t, s, d, p))
                        .collect();
                    assert_eq!(
                        surviving.len() as u64 + failed.len() as u64,
                        x,
                        "partition must cover the enumeration"
                    );
                    let mut union: Vec<PathId> = surviving.iter().chain(&failed).copied().collect();
                    union.sort_unstable_by_key(|p| p.0);
                    union.dedup();
                    assert_eq!(union.len() as u64, x, "classes must be disjoint");
                    assert!(union.iter().all(|p| p.0 < x));
                    assert_eq!(f.num_surviving(&t, s, d), surviving.len() as u64);
                    assert_eq!(f.connected(&t, s, d), !surviving.is_empty());
                    assert!(
                        surviving.windows(2).all(|w| w[0].0 < w[1].0),
                        "canonical order"
                    );
                }
            }
        }
    }
}
