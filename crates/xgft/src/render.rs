//! Graphviz export and text rendering of topologies.
//!
//! `dot -Tsvg` on the output reproduces diagrams like the paper's
//! Figures 1–3. Ranks are pinned per level so the drawing is layered
//! the way fat-trees are usually shown (top switches above, processing
//! nodes at the bottom).

use crate::{NodeId, Topology, MAX_HEIGHT};
use std::fmt::Write;

/// Render the topology in Graphviz DOT format. Each undirected cable is
/// emitted once. Labels follow the paper's tuple notation.
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::new();
    let h = topo.height();
    writeln!(out, "graph xgft {{").unwrap();
    writeln!(out, "  // {}", topo.spec()).unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    writeln!(out, "  node [shape=box, fontsize=10];").unwrap();
    for level in (0..=h).rev() {
        write!(out, "  {{ rank=same; ").unwrap();
        for rank in 0..topo.nodes_at_level(level) {
            write!(
                out,
                "{} ",
                dot_id(
                    topo,
                    NodeId {
                        level: level as u8,
                        rank
                    }
                )
            )
            .unwrap();
        }
        writeln!(out, "}}").unwrap();
    }
    for level in 0..=h {
        let shape = if level == 0 { "circle" } else { "box" };
        for rank in 0..topo.nodes_at_level(level) {
            let n = NodeId {
                level: level as u8,
                rank,
            };
            writeln!(
                out,
                "  {} [shape={shape}, label=\"{}\"];",
                dot_id(topo, n),
                label(topo, n)
            )
            .unwrap();
        }
    }
    for l in 1..=h {
        for child in 0..topo.nodes_at_level(l - 1) {
            for port in 0..topo.spec().w_at(l) {
                let e = topo.endpoints(topo.up_link(l, child, port));
                writeln!(out, "  {} -- {};", dot_id(topo, e.from), dot_id(topo, e.to)).unwrap();
            }
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// The paper's tuple label `(l, a_h, …, a_1)`.
pub fn label(topo: &Topology, node: NodeId) -> String {
    let mut digits = [0u32; MAX_HEIGHT];
    topo.digits_of(node, &mut digits);
    let mut s = format!("({}", node.level);
    for i in (1..=topo.height()).rev() {
        write!(s, ",{}", digits[i - 1]).unwrap();
    }
    s.push(')');
    s
}

fn dot_id(topo: &Topology, node: NodeId) -> String {
    let _ = topo;
    format!("n{}_{}", node.level, node.rank)
}

/// A one-line-per-level textual summary of a topology.
pub fn summary(topo: &Topology) -> String {
    let mut out = String::new();
    writeln!(out, "{}", topo.spec()).unwrap();
    writeln!(out, "  processing nodes : {}", topo.num_pns()).unwrap();
    writeln!(out, "  directed links   : {}", topo.num_links()).unwrap();
    for l in (1..=topo.height()).rev() {
        writeln!(
            out,
            "  level {l} switches : {:>6} ({} up / {} down ports each)",
            topo.nodes_at_level(l),
            topo.up_ports(l),
            topo.down_ports(l),
        )
        .unwrap();
    }
    writeln!(out, "  max paths/pair   : {}", topo.w_prod(topo.height())).unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XgftSpec;

    #[test]
    fn dot_is_structurally_complete() {
        let topo = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).unwrap());
        let dot = to_dot(&topo);
        assert!(dot.starts_with("graph xgft {"));
        assert!(dot.trim_end().ends_with('}'));
        // 4 PNs + 2 + 2 switches declared.
        assert_eq!(dot.matches("label=").count(), 8);
        // Undirected edges = directed links / 2.
        assert_eq!(dot.matches(" -- ").count() as u32, topo.num_links() / 2);
    }

    #[test]
    fn labels_use_paper_tuples() {
        let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
        assert_eq!(label(&topo, NodeId::pn(crate::PnId(0))), "(0,0,0,0)");
        assert_eq!(label(&topo, NodeId::pn(crate::PnId(63))), "(0,3,3,3)");
        let top = NodeId { level: 3, rank: 0 };
        assert!(label(&topo, top).starts_with("(3,"));
    }

    #[test]
    fn summary_mentions_key_quantities() {
        let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).unwrap());
        let s = summary(&topo);
        assert!(s.contains("processing nodes : 128"));
        assert!(s.contains("max paths/pair   : 16"));
        assert!(s.contains("level 3 switches"));
    }
}
