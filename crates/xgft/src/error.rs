//! Validation errors for [`crate::XgftSpec`].

use std::fmt;

/// Why an XGFT parameter set was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// `h == 0` (no switch levels) — the degenerate single-node tree is
    /// not useful as a network and is excluded.
    EmptyHeight,
    /// `h` exceeds [`crate::MAX_HEIGHT`].
    TooTall {
        /// Requested height.
        h: usize,
    },
    /// `m` and `w` have different lengths.
    MismatchedArities {
        /// Length of the child-arity vector `m`.
        m_len: usize,
        /// Length of the parent-arity vector `w`.
        w_len: usize,
    },
    /// Some `m_i` is zero (a switch level with no children would
    /// disconnect the tree).
    ZeroChildArity {
        /// 1-based level index of the offending entry.
        level: usize,
    },
    /// Some `w_i` is zero (nodes below level `i` would have no parents).
    ZeroParentArity {
        /// 1-based level index of the offending entry.
        level: usize,
    },
    /// The topology would exceed implementation limits (node, path or
    /// link counts past `u32::MAX`).
    TooLarge {
        /// Human-readable description of the limit that was hit.
        what: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyHeight => write!(f, "XGFT height h must be at least 1"),
            SpecError::TooTall { h } => {
                write!(
                    f,
                    "XGFT height {h} exceeds MAX_HEIGHT = {}",
                    crate::MAX_HEIGHT
                )
            }
            SpecError::MismatchedArities { m_len, w_len } => write!(
                f,
                "m and w must have the same length (got {m_len} and {w_len})"
            ),
            SpecError::ZeroChildArity { level } => {
                write!(f, "child arity m_{level} must be positive")
            }
            SpecError::ZeroParentArity { level } => {
                write!(f, "parent arity w_{level} must be positive")
            }
            SpecError::TooLarge { what } => write!(f, "XGFT too large: {what}"),
        }
    }
}

impl std::error::Error for SpecError {}
