//! Whole-fabric iteration and structural self-checks.

use crate::{DirectedLinkId, NodeId, Topology};

impl Topology {
    /// Iterate every node, level by level from the processing nodes up.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..=self.height()).flat_map(move |level| {
            (0..self.nodes_at_level(level)).map(move |rank| NodeId {
                level: level as u8,
                rank,
            })
        })
    }

    /// Iterate every directed link id.
    pub fn all_links(&self) -> impl Iterator<Item = DirectedLinkId> {
        (0..self.num_links()).map(DirectedLinkId)
    }

    /// Total number of nodes (processing nodes plus switches).
    pub fn num_nodes(&self) -> u64 {
        (0..=self.height())
            .map(|l| self.nodes_at_level(l) as u64)
            .sum()
    }

    /// Exhaustive structural self-check of the fabric: port counts,
    /// link-id bijectivity, parent/child inversion and digit-tuple
    /// adjacency (label vectors of cabled nodes agree everywhere except
    /// at the linking level). Intended for tests and for users composing
    /// new equivalence constructors; cost is O(links · h).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn validate_fabric(&self) {
        let mut seen = vec![false; self.num_links() as usize];
        let mut a = [0u32; crate::MAX_HEIGHT];
        let mut b = [0u32; crate::MAX_HEIGHT];
        for node in self.all_nodes() {
            let level = node.level as usize;
            for port in 0..self.ports_at_level(level) {
                let link = self.link_from_port(node, port);
                assert!(
                    !std::mem::replace(&mut seen[link.0 as usize], true),
                    "link {} emitted by two ports",
                    link.0
                );
                let e = self.endpoints(link);
                assert_eq!(e.from, node, "endpoint mismatch on link {}", link.0);
                assert_eq!(e.from_port, port, "port mismatch on link {}", link.0);
                assert_eq!(
                    (e.from.level as i32 - e.to.level as i32).abs(),
                    1,
                    "links must span exactly one level"
                );
                // Digit-tuple adjacency (the paper's connectivity rule).
                self.digits_of(e.from, &mut a);
                self.digits_of(e.to, &mut b);
                let linking = e.level as usize; // digits may differ at this position only
                for i in 1..=self.height() {
                    if i != linking {
                        assert_eq!(
                            a[i - 1],
                            b[i - 1],
                            "digit {i} differs across link {} (linking level {linking})",
                            link.0
                        );
                    }
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "some link is not reachable from any port"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XgftSpec;

    #[test]
    fn node_and_link_iteration_counts() {
        let t = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        assert_eq!(t.all_nodes().count() as u64, t.num_nodes());
        assert_eq!(t.num_nodes(), 16 + 4 + 4);
        assert_eq!(t.all_links().count() as u32, t.num_links());
    }

    #[test]
    fn paper_topologies_validate() {
        for spec in [
            XgftSpec::m_port_n_tree(8, 2).unwrap(),
            XgftSpec::m_port_n_tree(8, 3).unwrap(),
            XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap(),
            XgftSpec::new(&[3, 2, 4], &[2, 3, 2]).unwrap(),
            XgftSpec::new(&[5], &[3]).unwrap(),
        ] {
            Topology::new(spec).validate_fabric();
        }
    }

    #[test]
    fn iteration_is_level_ordered() {
        let t = Topology::new(XgftSpec::new(&[2, 2], &[2, 2]).unwrap());
        let mut prev_level = 0u8;
        for n in t.all_nodes() {
            assert!(n.level >= prev_level);
            prev_level = n.level;
        }
    }
}
