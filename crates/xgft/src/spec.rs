//! XGFT parameter sets and fat-tree equivalence constructors.

use crate::{SpecError, MAX_HEIGHT};
use std::fmt;

/// A validated `XGFT(h; m_1..m_h; w_1..w_h)` parameter set.
///
/// `m_i` is the number of children of a level-`i` node and `w_i` the
/// number of parents of a level-`(i-1)` node. Vectors are stored
/// 0-indexed: `m()[i-1] == m_i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XgftSpec {
    m: Box<[u32]>,
    w: Box<[u32]>,
}

impl XgftSpec {
    /// Validate and build a spec. `m` and `w` are the paper's parameter
    /// vectors, `m[0] = m_1` etc.
    ///
    /// # Errors
    ///
    /// Rejects empty or mismatched vectors, zero arities, heights above
    /// [`MAX_HEIGHT`] and sizes whose node/link/path counts overflow the
    /// `u32` ranks used internally.
    pub fn new(m: &[u32], w: &[u32]) -> Result<Self, SpecError> {
        if m.is_empty() && w.is_empty() {
            return Err(SpecError::EmptyHeight);
        }
        if m.len() != w.len() {
            return Err(SpecError::MismatchedArities {
                m_len: m.len(),
                w_len: w.len(),
            });
        }
        if m.len() > MAX_HEIGHT {
            return Err(SpecError::TooTall { h: m.len() });
        }
        for (i, &mi) in m.iter().enumerate() {
            if mi == 0 {
                return Err(SpecError::ZeroChildArity { level: i + 1 });
            }
        }
        for (i, &wi) in w.iter().enumerate() {
            if wi == 0 {
                return Err(SpecError::ZeroParentArity { level: i + 1 });
            }
        }
        let spec = XgftSpec {
            m: m.into(),
            w: w.into(),
        };
        // Node counts per level and the path count must fit comfortably.
        let mut pns: u64 = 1;
        for &mi in m {
            pns = pns
                .checked_mul(mi as u64)
                .filter(|&v| v <= u32::MAX as u64)
                .ok_or(SpecError::TooLarge {
                    what: "processing-node count exceeds u32",
                })?;
        }
        let mut tops: u64 = 1;
        for &wi in w {
            tops = tops
                .checked_mul(wi as u64)
                .filter(|&v| v <= u32::MAX as u64)
                .ok_or(SpecError::TooLarge {
                    what: "top-switch/path count exceeds u32",
                })?;
        }
        // Per-level node counts (mixed products) and link counts.
        let h = m.len();
        let mut links: u64 = 0;
        for l in 0..=h {
            let mut c: u64 = 1;
            for i in (l + 1)..=h {
                c *= m[i - 1] as u64;
            }
            for i in 1..=l {
                c *= w[i - 1] as u64;
            }
            if c > u32::MAX as u64 {
                return Err(SpecError::TooLarge {
                    what: "per-level node count exceeds u32",
                });
            }
            if l < h {
                links += 2 * c * w[l] as u64;
            }
        }
        if links > u32::MAX as u64 {
            return Err(SpecError::TooLarge {
                what: "directed link count exceeds u32",
            });
        }
        Ok(spec)
    }

    /// Tree height `h` (number of switch levels).
    pub fn height(&self) -> usize {
        self.m.len()
    }

    /// Child arities `m_1 .. m_h` (0-indexed slice).
    pub fn m(&self) -> &[u32] {
        &self.m
    }

    /// Parent arities `w_1 .. w_h` (0-indexed slice).
    pub fn w(&self) -> &[u32] {
        &self.w
    }

    /// `m_i` with the paper's 1-based level index.
    pub fn m_at(&self, i: usize) -> u32 {
        self.m[i - 1]
    }

    /// `w_i` with the paper's 1-based level index.
    pub fn w_at(&self, i: usize) -> u32 {
        self.w[i - 1]
    }

    /// The `m`-port `n`-tree of Lin, Chung and Huang, expressed as an
    /// XGFT. An `m`-port `n`-tree has `2 (m/2)^n` processing nodes and is
    /// topologically equivalent to
    /// `XGFT(n; (m/2), …, (m/2), m; 1, (m/2), …, (m/2))`
    /// — the equivalence used in §5 of the paper ("XGFT(3; 4,4,8; 1,4,4)
    /// … topologically equivalent to \[an\] 8-port 3-tree").
    ///
    /// # Errors
    ///
    /// `m` must be even and at least 2; `n` at least 1.
    pub fn m_port_n_tree(m: u32, n: usize) -> Result<Self, SpecError> {
        if m < 2 || !m.is_multiple_of(2) {
            return Err(SpecError::ZeroChildArity { level: 1 });
        }
        if n == 0 {
            return Err(SpecError::EmptyHeight);
        }
        let half = m / 2;
        let mut ms = vec![half; n];
        ms[n - 1] = m;
        let mut ws = vec![half; n];
        ws[0] = 1;
        XgftSpec::new(&ms, &ws)
    }

    /// The `k`-ary `n`-tree of Petrini and Vanneschi:
    /// `XGFT(n; k, …, k; 1, k, …, k)` with `k^n` processing nodes.
    pub fn k_ary_n_tree(k: u32, n: usize) -> Result<Self, SpecError> {
        if n == 0 {
            return Err(SpecError::EmptyHeight);
        }
        let ms = vec![k; n];
        let mut ws = vec![k; n];
        ws[0] = 1;
        XgftSpec::new(&ms, &ws)
    }

    /// A generalized fat-tree `GFT(h; m, w)` — uniform arities
    /// `XGFT(h; m, …, m; w, …, w)`.
    pub fn gft(h: usize, m: u32, w: u32) -> Result<Self, SpecError> {
        XgftSpec::new(&vec![m; h], &vec![w; h])
    }
}

impl fmt::Display for XgftSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XGFT({};", self.height())?;
        for (i, mi) in self.m.iter().enumerate() {
            write!(f, "{}{}", if i == 0 { " " } else { "," }, mi)?;
        }
        write!(f, ";")?;
        for (i, wi) in self.w.iter().enumerate() {
            write!(f, "{}{}", if i == 0 { " " } else { "," }, wi)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_specs() {
        assert_eq!(XgftSpec::new(&[], &[]), Err(SpecError::EmptyHeight));
        assert_eq!(
            XgftSpec::new(&[2], &[2, 2]),
            Err(SpecError::MismatchedArities { m_len: 1, w_len: 2 })
        );
        assert_eq!(
            XgftSpec::new(&[2, 0], &[1, 2]),
            Err(SpecError::ZeroChildArity { level: 2 })
        );
        assert_eq!(
            XgftSpec::new(&[2, 2], &[0, 2]),
            Err(SpecError::ZeroParentArity { level: 1 })
        );
        assert!(matches!(
            XgftSpec::new(&[2; MAX_HEIGHT + 1], &[1; MAX_HEIGHT + 1]),
            Err(SpecError::TooTall { .. })
        ));
        assert!(matches!(
            XgftSpec::new(&[u32::MAX, u32::MAX], &[1, 1]),
            Err(SpecError::TooLarge { .. })
        ));
    }

    #[test]
    fn accessors_use_one_based_levels() {
        let s = XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap();
        assert_eq!(s.height(), 3);
        assert_eq!(s.m_at(1), 4);
        assert_eq!(s.m_at(3), 8);
        assert_eq!(s.w_at(1), 1);
        assert_eq!(s.w_at(3), 4);
    }

    #[test]
    fn m_port_n_tree_matches_paper_equivalences() {
        // §5: 8-port 3-tree == XGFT(3; 4,4,8; 1,4,4)
        let t = XgftSpec::m_port_n_tree(8, 3).unwrap();
        assert_eq!(t.m(), &[4, 4, 8]);
        assert_eq!(t.w(), &[1, 4, 4]);
        // 16-port 3-tree == XGFT(3; 8,8,16; 1,8,8)
        let t = XgftSpec::m_port_n_tree(16, 3).unwrap();
        assert_eq!(t.m(), &[8, 8, 16]);
        assert_eq!(t.w(), &[1, 8, 8]);
        // 24-port 2-tree == XGFT(2; 12,24; 1,12)
        let t = XgftSpec::m_port_n_tree(24, 2).unwrap();
        assert_eq!(t.m(), &[12, 24]);
        assert_eq!(t.w(), &[1, 12]);
        assert!(XgftSpec::m_port_n_tree(7, 2).is_err());
        assert!(XgftSpec::m_port_n_tree(8, 0).is_err());
    }

    #[test]
    fn k_ary_n_tree_shape() {
        let t = XgftSpec::k_ary_n_tree(4, 3).unwrap();
        assert_eq!(t.m(), &[4, 4, 4]);
        assert_eq!(t.w(), &[1, 4, 4]);
    }

    #[test]
    fn display_formats_like_the_paper() {
        let s = XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap();
        assert_eq!(s.to_string(), "XGFT(3; 4,4,8; 1,4,4)");
    }
}
