//! The facade crate's public API: everything a downstream user needs is
//! reachable through `lmpr::prelude` and behaves coherently.

use lmpr::prelude::*;
use lmpr::routing::lid;

#[test]
fn prelude_covers_the_whole_workflow() {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
    let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), 0));
    let router = RouterKind::parse("disjoint:2").unwrap();
    let loads = LinkLoads::accumulate(&topo, &router, &tm);
    assert!(loads.max_load() >= 1.0);
    let stats = FlitSim::simulate(
        &topo,
        router,
        SimConfig {
            warmup_cycles: 500,
            measure_cycles: 1_500,
            ..SimConfig::default()
        },
    )
    .expect("valid config");
    assert!(stats.delivered_flits > 0);
}

#[test]
fn router_kind_strings_round_trip_through_names() {
    for (spec, name) in [
        ("dmodk", "d-mod-k"),
        ("shift1:4", "shift-1(4)"),
        ("disjoint:8", "disjoint(8)"),
        ("stride:2", "disjoint-stride(2)"),
        ("random:3:7", "random(3)"),
        ("umulti", "umulti"),
    ] {
        assert_eq!(RouterKind::parse(spec).unwrap().name(), name);
    }
}

#[test]
fn re_exported_crates_are_the_same_types() {
    // The facade's re-exports must be the actual crates, not copies.
    let topo: lmpr::topology::Topology =
        Topology::new(lmpr::topology::XgftSpec::gft(2, 2, 2).unwrap());
    let _set: lmpr::routing::PathSet =
        lmpr::routing::Router::path_set(&DModK, &topo, PnId(0), PnId(3));
}

#[test]
fn lid_budget_is_exposed() {
    let topo = Topology::new(XgftSpec::m_port_n_tree(24, 3).unwrap());
    assert!(!lid::umulti_realizable(&topo));
    assert!(lid::max_realizable_budget(&topo) >= 1);
}

#[test]
fn doc_example_from_readme_runs() {
    // Keep README's five-line example honest.
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
    let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), 1));
    let single = LinkLoads::accumulate(&topo, &DModK, &tm).max_load();
    let multi = LinkLoads::accumulate(&topo, &Disjoint::new(4), &tm).max_load();
    assert!(multi <= single);
}
