//! End-to-end flow-level integration: the paper's Figure-4 claims on
//! small instances of the §5 topologies, with fixed seeds.

use lmpr::flowsim::{ml_lower_bound, performance_ratio};
use lmpr::prelude::*;
use lmpr::traffic::adversarial_concentration;

fn quick_cfg() -> StudyConfig {
    StudyConfig {
        initial_samples: 40,
        max_samples: 160,
        rel_half_width: 0.04,
        threads: 2,
        ..StudyConfig::default()
    }
}

/// Figure 4's qualitative content on an 8-port 2-tree: every heuristic
/// improves monotonically with K and reaches the optimum at K = max.
#[test]
fn two_level_tree_reaches_optimal() {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
    let study = PermutationStudy::new(topo.clone(), quick_cfg());
    let max_k = topo.w_prod(topo.height());
    let umulti = study.run(&Umulti).mean;

    for mk in [
        (|k| Box::new(ShiftOne::new(k)) as Box<dyn Router>) as fn(u64) -> Box<dyn Router>,
        |k| Box::new(Disjoint::new(k)),
        |k| Box::new(RandomK::new(k, 5)),
    ] {
        let mut prev = f64::INFINITY;
        for k in 1..=max_k {
            let mean = study.run(&mk(k)).mean;
            assert!(
                mean <= prev + 0.15,
                "{} regressed hard from K={} ({prev:.3}) to K={k} ({mean:.3})",
                mk(k).name(),
                k - 1
            );
            prev = mean;
        }
        let full = study.run(&mk(max_k)).mean;
        assert!(
            (full - umulti).abs() < 1e-9,
            "{} at K = max must equal UMULTI",
            mk(max_k).name()
        );
    }
}

/// On 2-level trees shift-1 and disjoint are the *same* scheme (§5).
#[test]
fn shift_equals_disjoint_on_two_level_trees() {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
    for k in 1..=4u64 {
        let shift = ShiftOne::new(k);
        let disjoint = Disjoint::new(k);
        for s in 0..topo.num_pns() {
            for d in 0..topo.num_pns() {
                let (s, d) = (PnId(s), PnId(d));
                let a: std::collections::BTreeSet<_> = shift
                    .path_set(&topo, s, d)
                    .paths()
                    .iter()
                    .copied()
                    .collect();
                let b: std::collections::BTreeSet<_> = disjoint
                    .path_set(&topo, s, d)
                    .paths()
                    .iter()
                    .copied()
                    .collect();
                assert_eq!(
                    a, b,
                    "shift-1({k}) != disjoint({k}) on pair ({}, {})",
                    s.0, d.0
                );
            }
        }
    }
}

/// Figure 4(b)/(d) headline: on 3-level trees the disjoint heuristic
/// beats shift-1 significantly at intermediate K.
#[test]
fn disjoint_beats_shift_on_three_level_trees() {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).unwrap());
    let study = PermutationStudy::new(topo, quick_cfg());
    for k in [2u64, 4, 8] {
        let shift = study.run(&ShiftOne::new(k)).mean;
        let disjoint = study.run(&Disjoint::new(k)).mean;
        assert!(
            disjoint < shift,
            "disjoint({k}) = {disjoint:.3} must beat shift-1({k}) = {shift:.3}"
        );
    }
}

/// "Even a small K is much better than single-path routing."
#[test]
fn small_k_recovers_most_of_the_gap() {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).unwrap());
    let study = PermutationStudy::new(topo, quick_cfg());
    let single = study.run(&DModK).mean;
    let k4 = study.run(&Disjoint::new(4)).mean;
    let opt = study.run(&Umulti).mean;
    assert!(single > opt, "sanity: single-path is suboptimal");
    let recovered = (single - k4) / (single - opt);
    assert!(
        recovered > 0.5,
        "disjoint(4) should recover >50% of the single-path gap, got {recovered:.2}"
    );
}

/// Theorem 1 on every §5 topology small enough to test quickly.
#[test]
fn umulti_is_optimal_everywhere() {
    for spec in [
        XgftSpec::m_port_n_tree(8, 2).unwrap(),
        XgftSpec::m_port_n_tree(8, 3).unwrap(),
        XgftSpec::new(&[2, 3, 4], &[3, 1, 2]).unwrap(),
    ] {
        let topo = Topology::new(spec);
        for seed in 0..8u64 {
            let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
            let ratio = performance_ratio(&topo, &Umulti, &tm);
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "PERF(UMULTI) must be 1, got {ratio}"
            );
        }
    }
}

/// Theorem 2 end to end, including that limited multi-path routing
/// repairs the adversarial pattern gradually.
#[test]
fn adversarial_pattern_repair_curve() {
    let topo = Topology::new(XgftSpec::new(&[4, 4, 64], &[2, 2, 2]).unwrap());
    let p = adversarial_concentration(&topo).unwrap();
    let w = topo.w_prod(topo.height()) as f64;
    assert_eq!(performance_ratio(&topo, &DModK, &p.tm), w);
    let mut prev = f64::INFINITY;
    for k in [1u64, 2, 4, 8] {
        let ratio = performance_ratio(&topo, &Disjoint::new(k), &p.tm);
        assert!(ratio <= prev, "ratio must not grow with K");
        prev = ratio;
    }
    assert!((prev - 1.0).abs() < 1e-9, "K = Π w_i must be optimal");
}

/// The Lemma 1 bound is genuinely a lower bound for *every* router.
#[test]
fn ml_bound_lower_bounds_all_routers() {
    let topo = Topology::new(XgftSpec::new(&[3, 4], &[2, 3]).unwrap());
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(DModK),
        Box::new(SModK),
        Box::new(ShiftOne::new(2)),
        Box::new(Disjoint::new(3)),
        Box::new(DisjointStride::new(3)),
        Box::new(RandomK::new(2, 9)),
        Box::new(Umulti),
    ];
    for seed in 0..6u64 {
        let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
        let bound = ml_lower_bound(&topo, &tm);
        for r in &routers {
            let mload = LinkLoads::accumulate(&topo, r, &tm).max_load();
            assert!(
                mload >= bound - 1e-9,
                "{} violated the optimal-load bound: {mload} < {bound}",
                r.name()
            );
        }
    }
}
