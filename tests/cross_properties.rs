//! Cross-crate property tests: invariants that tie the routing layer,
//! the flow-level analysis and the theory together on random inputs.

use lmpr::flowsim::{ml_lower_bound, performance_ratio};
use lmpr::prelude::*;
use proptest::prelude::*;

fn arb_topo() -> impl Strategy<Value = Topology> {
    (1usize..=3)
        .prop_flat_map(|h| {
            (
                prop::collection::vec(2u32..=4, h),
                prop::collection::vec(1u32..=3, h),
            )
        })
        .prop_map(|(m, w)| Topology::new(XgftSpec::new(&m, &w).expect("valid")))
}

fn arb_router(k: u64, seed: u64) -> Vec<RouterKind> {
    vec![
        RouterKind::DModK,
        RouterKind::SModK,
        RouterKind::ShiftOne(k),
        RouterKind::Disjoint(k),
        RouterKind::DisjointStride(k),
        RouterKind::RandomK(k, seed),
        RouterKind::Umulti,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PERF ≥ 1 for every router on every permutation, and UMULTI
    /// pins the optimum (Theorem 1).
    #[test]
    fn performance_ratios_are_sane(
        topo in arb_topo(),
        seed in 0u64..1000,
        k in 1u64..=6,
    ) {
        let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
        let opt = ml_lower_bound(&topo, &tm);
        for r in arb_router(k, seed) {
            let ratio = performance_ratio(&topo, &r, &tm);
            prop_assert!(ratio >= 1.0 - 1e-9, "{} ratio {ratio} < 1", r.name());
        }
        if opt > 0.0 {
            let u = performance_ratio(&topo, &RouterKind::Umulti, &tm);
            prop_assert!((u - 1.0).abs() < 1e-9, "UMULTI ratio {u} != 1");
        }
    }

    /// Total routed volume is invariant across routers: every scheme
    /// moves each flow over exactly 2·κ links' worth of demand.
    #[test]
    fn total_link_volume_is_router_independent(
        topo in arb_topo(),
        seed in 0u64..1000,
        k in 1u64..=6,
    ) {
        let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
        let reference = LinkLoads::accumulate(&topo, &RouterKind::DModK, &tm).total();
        for r in arb_router(k, seed) {
            let total = LinkLoads::accumulate(&topo, &r, &tm).total();
            prop_assert!(
                (total - reference).abs() < 1e-6,
                "{} moved {total}, expected {reference}",
                r.name()
            );
        }
    }

    /// Increasing K never increases the max load under the deterministic
    /// heuristics *on the worst link of a fixed permutation in
    /// expectation-free form*: we assert the weaker, always-true variant
    /// MLOAD(K = X) ≤ MLOAD(K = 1).
    #[test]
    fn full_budget_never_loses_to_single_path(
        topo in arb_topo(),
        seed in 0u64..1000,
    ) {
        let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed));
        let x = topo.w_prod(topo.height());
        let single = LinkLoads::accumulate(&topo, &RouterKind::DModK, &tm).max_load();
        let full = LinkLoads::accumulate(&topo, &RouterKind::Disjoint(x), &tm).max_load();
        prop_assert!(full <= single + 1e-9);
    }

    /// The flit simulator conserves flits for arbitrary small runs.
    #[test]
    fn flit_conservation_on_random_configs(
        seed in 0u64..100,
        load_pct in 10u32..=100,
        k in 1u64..=4,
    ) {
        let topo = Topology::new(XgftSpec::new(&[2, 4], &[1, 2]).unwrap());
        let cfg = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 800,
            offered_load: load_pct as f64 / 100.0,
            seed,
            packet_flits: 4,
            packets_per_message: 2,
            buffer_packets: 2,
            ..SimConfig::default()
        };
        let mut sim = FlitSim::new(&topo, Disjoint::new(k), cfg).expect("valid config");
        for _ in 0..1_000 {
            sim.step();
        }
        let (injected, delivered) = sim.lifetime_counters();
        prop_assert_eq!(injected, delivered + sim.flits_in_network());
    }
}
