//! End-to-end flit-level integration on the paper's Table-1 topology.

use lmpr::flitsim::sweep::{load_grid, run_sweep};
use lmpr::flitsim::{saturation_throughput, FlitSim, PathPolicy};
use lmpr::prelude::*;

fn table1_topo() -> Topology {
    Topology::new(XgftSpec::m_port_n_tree(8, 3).unwrap())
}

fn quick(load: f64) -> SimConfig {
    SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 6_000,
        offered_load: load,
        ..SimConfig::default()
    }
}

/// Below saturation the network is lossless and open-loop: accepted
/// throughput equals offered load for every scheme.
#[test]
fn subsaturation_throughput_tracks_offered_load() {
    let topo = table1_topo();
    for r in [
        Box::new(DModK) as Box<dyn Router>,
        Box::new(ShiftOne::new(2)),
        Box::new(Disjoint::new(8)),
        Box::new(RandomK::new(4, 3)),
    ] {
        for load in [0.1, 0.3] {
            let s = FlitSim::simulate(&topo, &r, quick(load)).expect("valid config");
            let t = s.accepted_throughput();
            assert!(
                (t - load).abs() < 0.03,
                "{}: accepted {t:.3} at offered {load}",
                r.name()
            );
        }
    }
}

/// Table 1's ordering at K = 8: disjoint saturates above shift-1 and
/// random, and above d-mod-k.
#[test]
fn disjoint_has_highest_saturation_at_k8() {
    let topo = table1_topo();
    let cfg = quick(0.0).with_load(0.5); // load replaced by the sweep
    let loads = [0.6, 0.7, 0.8];
    let sat = |r: &dyn Router| {
        saturation_throughput(&run_sweep(&topo, &r, cfg, &loads, 0).expect("sweep runs"))
    };
    let dmodk = sat(&DModK);
    let shift = sat(&ShiftOne::new(8));
    let random = sat(&RandomK::new(8, 11));
    let disjoint = sat(&Disjoint::new(8));
    assert!(
        disjoint > shift && disjoint > random && disjoint > dmodk,
        "disjoint(8) = {disjoint:.3} must lead (shift {shift:.3}, random {random:.3}, d-mod-k {dmodk:.3})"
    );
}

/// Figure 5's qualitative content: at medium-high load multi-path delay
/// is clearly below single-path delay.
#[test]
fn multipath_reduces_delay_at_medium_load() {
    let topo = table1_topo();
    let single = FlitSim::simulate(&topo, DModK, quick(0.6)).expect("valid config");
    let multi = FlitSim::simulate(&topo, Disjoint::new(2), quick(0.6)).expect("valid config");
    assert!(single.completion_rate() > 0.8 && multi.completion_rate() > 0.8);
    assert!(
        multi.avg_message_delay() < single.avg_message_delay(),
        "disjoint(2) delay {:.1} must beat d-mod-k {:.1}",
        multi.avg_message_delay(),
        single.avg_message_delay()
    );
}

/// Delay explodes past saturation (tree saturation, §5).
#[test]
fn delay_blows_up_past_saturation() {
    let topo = table1_topo();
    let low = FlitSim::simulate(&topo, DModK, quick(0.2)).expect("valid config");
    let high = FlitSim::simulate(&topo, DModK, quick(1.0)).expect("valid config");
    assert!(
        high.avg_message_delay() > 3.0 * low.avg_message_delay() || high.completion_rate() < 0.9,
        "overload must show up as delay blow-up or message starvation"
    );
}

/// Flit conservation holds across a long mixed run on a 3-level tree.
#[test]
fn conservation_on_the_paper_topology() {
    let topo = table1_topo();
    let mut sim = FlitSim::new(&topo, Disjoint::new(4), quick(0.8)).expect("valid config");
    for _ in 0..6_000 {
        sim.step();
    }
    let (injected, delivered) = sim.lifetime_counters();
    assert_eq!(injected, delivered + sim.flits_in_network());
    assert!(delivered > 100_000, "the run must move real traffic");
}

/// The sweep helper and the direct simulation agree.
#[test]
fn sweep_matches_direct_runs() {
    let topo = table1_topo();
    let cfg = quick(0.0);
    let loads = [0.2, 0.5];
    let sweep = run_sweep(&topo, &DModK, cfg, &loads, 2).expect("sweep runs");
    for (i, &l) in loads.iter().enumerate() {
        let direct = FlitSim::simulate(&topo, DModK, cfg.with_load(l)).expect("valid config");
        assert_eq!(sweep[i], direct.load_point());
    }
    assert_eq!(load_grid(0.5), vec![0.5, 1.0]);
}

/// All three path policies deliver the same traffic volume at low load
/// (they only differ in how they spread it).
#[test]
fn policies_agree_below_saturation() {
    let topo = table1_topo();
    let mut results = Vec::new();
    for p in [
        PathPolicy::RoundRobin,
        PathPolicy::PerPacketRandom,
        PathPolicy::PerMessageRandom,
    ] {
        let cfg = SimConfig {
            path_policy: p,
            ..quick(0.25)
        };
        results.push(
            FlitSim::simulate(&topo, Disjoint::new(4), cfg)
                .expect("valid config")
                .accepted_throughput(),
        );
    }
    for w in results.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 0.02,
            "policies diverge below saturation: {results:?}"
        );
    }
}

/// Cross-validation of the two simulators on one fixed permutation:
/// the scheme with the lower flow-level maximum link load accepts more
/// traffic at the flit level, and every scheme lands between the
/// bottleneck fair share (`1/maxload`, what flows *through* the hot
/// link get) and the injection bound.
#[test]
fn flit_saturation_tracks_flow_level_bottleneck() {
    use lmpr::flowsim::LinkLoads as FL;
    let topo = table1_topo();
    let perm = random_permutation(topo.num_pns(), 3);
    let tm = TrafficMatrix::permutation(&perm);
    let mode = TrafficMode::Permutation(perm.clone());

    let mut measured = Vec::new();
    for r in [RouterKind::DModK, RouterKind::Disjoint(8)] {
        let flow_max = FL::accumulate(&topo, &r, &tm).max_load();
        let cfg = SimConfig {
            warmup_cycles: 4_000,
            measure_cycles: 10_000,
            offered_load: 1.0,
            ..SimConfig::default()
        };
        let mut sim = FlitSim::with_traffic(&topo, r, cfg, mode.clone()).expect("valid config");
        let accepted = sim.run().expect("no deadlock").accepted_throughput();
        assert!(
            accepted >= 0.5 / flow_max && accepted <= 1.0,
            "{}: accepted {accepted:.3} outside [{:.3}, 1.0]",
            r.name(),
            0.5 / flow_max
        );
        measured.push((flow_max, accepted));
    }
    let (dmodk, disjoint) = (measured[0], measured[1]);
    assert!(
        disjoint.0 < dmodk.0,
        "sanity: disjoint(8) must have the lower static bottleneck"
    );
    assert!(
        disjoint.1 > dmodk.1,
        "the lower static bottleneck must accept more: disjoint {:.3} vs d-mod-k {:.3}",
        disjoint.1,
        dmodk.1
    );
}

/// Permutation mode routes every message to the permutation target.
#[test]
fn permutation_mode_is_honoured() {
    let topo = table1_topo();
    let n = topo.num_pns();
    // A permutation with some self-mapped (silent) entries.
    let mut perm: Vec<u32> = (0..n).collect();
    perm.swap(0, 77);
    perm.swap(12, 99);
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: 4_000,
        offered_load: 0.3,
        ..SimConfig::default()
    };
    let mut sim = FlitSim::with_traffic(&topo, DModK, cfg, TrafficMode::Permutation(perm))
        .expect("valid config");
    let stats = sim.run().expect("no deadlock");
    // Only 4 nodes send; aggregate throughput is tiny but non-zero, and
    // the delivery assertions inside the simulator (debug) plus flit
    // conservation guarantee correctness of the destinations.
    assert!(stats.delivered_flits > 0);
    let (injected, delivered) = sim.lifetime_counters();
    assert_eq!(injected, delivered + sim.flits_in_network());
    assert!(
        stats.accepted_throughput() < 0.3 * 5.0 / n as f64 + 0.02,
        "only the 4 swapped nodes may send"
    );
}

/// Hotspot traffic cannot be fixed by multi-path routing — the hot
/// node's ejection link is the bottleneck for every scheme (negative
/// control from the hotspot literature).
#[test]
fn hotspot_is_routing_invariant() {
    let topo = table1_topo();
    let mode = lmpr::flitsim::TrafficMode::Hotspot {
        hot: vec![0],
        fraction: 0.5,
    };
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 6_000,
        offered_load: 0.6,
        ..SimConfig::default()
    };
    let a = {
        let mut s = FlitSim::with_traffic(&topo, DModK, cfg, mode.clone()).expect("valid config");
        s.run().expect("no deadlock").accepted_throughput()
    };
    let b = {
        let mut s =
            FlitSim::with_traffic(&topo, Disjoint::new(8), cfg, mode).expect("valid config");
        s.run().expect("no deadlock").accepted_throughput()
    };
    // Both collapse to a similar hot-node-bound throughput.
    assert!(
        (a - b).abs() < 0.05,
        "hotspot throughput should be scheme-independent: {a:.3} vs {b:.3}"
    );
    assert!(
        a < 0.35,
        "the hot ejection link must cap throughput, got {a:.3}"
    );
}
