//! `lmpr` — command-line front end to the limited multi-path routing
//! toolkit.
//!
//! ```text
//! lmpr info  <topo> [--dot]                     topology summary / Graphviz
//! lmpr paths <topo> <src> <dst> [<router>]      enumerate or select paths
//! lmpr loads <topo> <router> <traffic>          flow-level max link load
//! lmpr study <topo> <router> [--quick]          CI permutation study
//! lmpr flit  <topo> <router> <load> [--quick]   flit-level run at one load
//! lmpr oblivious <topo> <router>                oblivious-ratio estimate
//! lmpr worstcase <topo> <router>                adversarial permutation search
//! lmpr tables <topo> <k> [top|bottom]           forwarding-table footprint
//! ```
//!
//! Topologies: `xgft:M1,M2,..;W1,W2,..`, `mport:M,N`, `kary:K,N`.
//! Routers: `dmodk`, `smodk`, `shift1:K`, `disjoint:K`, `stride:K`,
//! `random:K[:seed]`, `umulti`.
//! Traffic: `perm:SEED`, `uniform`, `adversarial`, `shift:K`,
//! `hotspot:NODE:FRACTION`, `alltoone:NODE`.

#![forbid(unsafe_code)]

use lmpr::flowsim::{
    estimate_oblivious_ratio, level_breakdown, ml_lower_bound, performance_ratio,
    worst_permutation, SearchConfig,
};
use lmpr::prelude::*;
use lmpr::routing::forwarding::{ForwardingTables, SlotOrder};
use lmpr::topology::render;
use lmpr::traffic::{
    adversarial_concentration, all_to_one, hotspot, shift_permutation, TrafficMatrix,
};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage("missing subcommand");
    }
    let cmd = args[0].as_str();
    let rest = &args[1..];
    let result = match cmd {
        "info" => cmd_info(rest),
        "paths" => cmd_paths(rest),
        "loads" => cmd_loads(rest),
        "study" => cmd_study(rest),
        "flit" => cmd_flit(rest),
        "oblivious" => cmd_oblivious(rest),
        "worstcase" => cmd_worstcase(rest),
        "tables" => cmd_tables(rest),
        "help" | "--help" | "-h" => {
            eprintln!("{}", USAGE);
            return;
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    if let Err(e) = result {
        usage(&e);
    }
}

const USAGE: &str = "\
usage:
  lmpr info  <topo> [--dot]
  lmpr paths <topo> <src> <dst> [<router>]
  lmpr loads <topo> <router> <traffic>
  lmpr study <topo> <router> [--quick]
  lmpr flit  <topo> <router> <load> [--quick]
  lmpr oblivious <topo> <router>
  lmpr worstcase <topo> <router>
  lmpr tables <topo> <k> [top|bottom]

topo    = xgft:M1,..;W1,..  |  mport:M,N  |  kary:K,N
router  = dmodk | smodk | shift1:K | disjoint:K | stride:K | random:K[:seed] | umulti
traffic = perm:SEED | uniform | adversarial | shift:K | hotspot:NODE:FRAC | alltoone:NODE";

fn usage(err: &str) -> ! {
    eprintln!("lmpr: {err}\n{USAGE}");
    exit(2);
}

fn parse_topo(s: &str) -> Result<Topology, String> {
    let (kind, body) = s
        .split_once(':')
        .ok_or_else(|| format!("bad topology `{s}`"))?;
    let nums = |t: &str| -> Result<Vec<u32>, String> {
        t.split(',')
            .map(|x| {
                x.parse::<u32>()
                    .map_err(|e| format!("bad number in `{t}`: {e}"))
            })
            .collect()
    };
    let spec = match kind {
        "xgft" => {
            let (m, w) = body
                .split_once(';')
                .ok_or("xgft needs `M..;W..`".to_owned())?;
            XgftSpec::new(&nums(m)?, &nums(w)?)
        }
        "mport" => {
            let v = nums(body)?;
            if v.len() != 2 {
                return Err("mport needs `M,N`".into());
            }
            XgftSpec::m_port_n_tree(v[0], v[1] as usize)
        }
        "kary" => {
            let v = nums(body)?;
            if v.len() != 2 {
                return Err("kary needs `K,N`".into());
            }
            XgftSpec::k_ary_n_tree(v[0], v[1] as usize)
        }
        other => return Err(format!("unknown topology kind `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    Ok(Topology::new(spec))
}

fn parse_traffic(s: &str, topo: &Topology) -> Result<TrafficMatrix, String> {
    let n = topo.num_pns();
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or("");
    let arg = |p: Option<&str>| -> Result<u32, String> {
        p.ok_or_else(|| format!("`{head}` needs an argument"))?
            .parse::<u32>()
            .map_err(|e| e.to_string())
    };
    match head {
        "perm" => {
            let seed = arg(parts.next())? as u64;
            Ok(TrafficMatrix::permutation(&random_permutation(n, seed)))
        }
        "uniform" => Ok(TrafficMatrix::uniform(n, 1.0)),
        "adversarial" => adversarial_concentration(topo)
            .map(|p| p.tm)
            .ok_or_else(|| "topology too small for the Theorem-2 pattern".to_owned()),
        "shift" => Ok(TrafficMatrix::permutation(&shift_permutation(
            n,
            arg(parts.next())?,
        ))),
        "hotspot" => {
            let node = arg(parts.next())?;
            let frac: f64 = parts
                .next()
                .ok_or("hotspot needs `NODE:FRACTION`".to_owned())?
                .parse()
                .map_err(|e: std::num::ParseFloatError| e.to_string())?;
            Ok(hotspot(n, &[PnId(node)], frac))
        }
        "alltoone" => Ok(all_to_one(n, PnId(arg(parts.next())?))),
        other => Err(format!("unknown traffic `{other}`")),
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("info needs a topology")?)?;
    if args.iter().any(|a| a == "--dot") {
        print!("{}", render::to_dot(&topo));
    } else {
        print!("{}", render::summary(&topo));
        println!(
            "  LID budget       : max realizable K = {}, UMULTI realizable: {}",
            lmpr::routing::lid::max_realizable_budget(&topo),
            lmpr::routing::lid::umulti_realizable(&topo),
        );
    }
    Ok(())
}

fn cmd_paths(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("paths needs a topology")?)?;
    let src = PnId(
        args.get(1)
            .ok_or("paths needs <src>")?
            .parse()
            .map_err(|e| format!("{e}"))?,
    );
    let dst = PnId(
        args.get(2)
            .ok_or("paths needs <dst>")?
            .parse()
            .map_err(|e| format!("{e}"))?,
    );
    if src.0 >= topo.num_pns() || dst.0 >= topo.num_pns() {
        return Err("node id out of range".into());
    }
    println!(
        "pair ({}, {}): NCA level {}, {} shortest paths, d-mod-k -> path {}",
        src.0,
        dst.0,
        topo.nca_level(src, dst),
        topo.num_paths(src, dst),
        topo.dmodk_path(src, dst).0
    );
    let selected: Vec<PathId> = match args.get(3) {
        Some(r) => RouterKind::parse(r)?
            .path_set(&topo, src, dst)
            .paths()
            .to_vec(),
        None => topo.all_paths(src, dst).collect(),
    };
    for p in selected {
        let hops: Vec<String> = topo
            .path_nodes(src, dst, p)
            .iter()
            .map(|nd| render::label(&topo, *nd))
            .collect();
        println!("  path {:>3}: {}", p.0, hops.join(" -> "));
    }
    Ok(())
}

fn cmd_loads(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("loads needs a topology")?)?;
    let router = RouterKind::parse(args.get(1).ok_or("loads needs a router")?)?;
    let tm = parse_traffic(args.get(2).ok_or("loads needs a traffic spec")?, &topo)?;
    let loads = LinkLoads::accumulate(&topo, &router, &tm);
    let (hot, max) = loads.argmax();
    let e = topo.endpoints(hot);
    println!("router  : {}", router.name());
    println!("flows   : {}", tm.flows().len());
    println!(
        "max load: {max:.4}  (link {} -> {})",
        render::label(&topo, e.from),
        render::label(&topo, e.to)
    );
    println!("ML bound: {:.4}", ml_lower_bound(&topo, &tm));
    println!("ratio   : {:.4}", performance_ratio(&topo, &router, &tm));
    println!("\nper-level breakdown (max / mean / imbalance):");
    for c in level_breakdown(&topo, &loads) {
        println!(
            "  level {} {:>4}: {:>8.3} / {:>8.3} / {:>6.3}",
            c.level,
            format!("{:?}", c.dir).to_lowercase(),
            c.max,
            c.mean,
            c.imbalance()
        );
    }
    Ok(())
}

fn cmd_study(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("study needs a topology")?)?;
    let router = RouterKind::parse(args.get(1).ok_or("study needs a router")?)?;
    let cfg = if args.iter().any(|a| a == "--quick") {
        StudyConfig {
            initial_samples: 30,
            max_samples: 120,
            rel_half_width: 0.05,
            ..StudyConfig::default()
        }
    } else {
        StudyConfig::default()
    };
    let r = PermutationStudy::new(topo, cfg).run(&router);
    println!("router       : {}", router.name());
    println!("avg max load : {:.4}", r.mean);
    println!("99% CI       : ±{:.4}", r.half_width);
    println!("samples      : {} (converged: {})", r.samples, r.converged);
    Ok(())
}

fn cmd_flit(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("flit needs a topology")?)?;
    let router = RouterKind::parse(args.get(1).ok_or("flit needs a router")?)?;
    let load: f64 = args
        .get(2)
        .ok_or("flit needs an offered load in (0,1]")?
        .parse()
        .map_err(|e: std::num::ParseFloatError| e.to_string())?;
    let cfg = if args.iter().any(|a| a == "--quick") {
        SimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 6_000,
            offered_load: load,
            ..SimConfig::default()
        }
    } else {
        SimConfig {
            offered_load: load,
            ..SimConfig::default()
        }
    };
    let s = FlitSim::simulate(&topo, router, cfg).map_err(|e| e.to_string())?;
    println!("router            : {}", router.name());
    println!("offered load      : {:.1}%", s.offered_load * 100.0);
    println!(
        "accepted thpt     : {:.2}%",
        s.accepted_throughput() * 100.0
    );
    println!("avg message delay : {:.1} cycles", s.avg_message_delay());
    println!(
        "delay p50/p95/p99 : {:.0} / {:.0} / {:.0}",
        s.delay_p50, s.delay_p95, s.delay_p99
    );
    println!("completion rate   : {:.1}%", s.completion_rate() * 100.0);
    println!("source backlog    : {} packets", s.final_source_backlog);
    Ok(())
}

fn cmd_oblivious(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("oblivious needs a topology")?)?;
    let router = RouterKind::parse(args.get(1).ok_or("oblivious needs a router")?)?;
    let e = estimate_oblivious_ratio(&topo, &router, 50, 1);
    println!("router            : {}", router.name());
    println!("oblivious ratio ≥ : {:.3}", e.ratio);
    println!("witness           : {}", e.witness);
    Ok(())
}

fn cmd_worstcase(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("worstcase needs a topology")?)?;
    let router = RouterKind::parse(args.get(1).ok_or("worstcase needs a router")?)?;
    let w = worst_permutation(&topo, &router, SearchConfig::default());
    println!("router              : {}", router.name());
    println!("worst ratio found   : {:.3}", w.ratio);
    let shown = w.permutation.len().min(16);
    println!(
        "permutation (first {shown}): {:?}{}",
        &w.permutation[..shown],
        if w.permutation.len() > shown {
            " …"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_tables(args: &[String]) -> Result<(), String> {
    let topo = parse_topo(args.first().ok_or("tables needs a topology")?)?;
    let k: u64 = args
        .get(1)
        .ok_or("tables needs K")?
        .parse()
        .map_err(|e: std::num::ParseIntError| e.to_string())?;
    let order = match args.get(2).map(String::as_str) {
        None | Some("bottom") => SlotOrder::BottomFirst,
        Some("top") => SlotOrder::TopFirst,
        Some(other) => return Err(format!("unknown slot order `{other}`")),
    };
    let ft = ForwardingTables::build(&topo, k, order);
    println!("topology      : {}", topo.spec());
    println!("paths per dst : {k} (slot order {order:?})");
    println!("LMC           : {}", ft.lmc());
    println!("LFT entries   : {} across all switches", ft.total_entries());
    println!(
        "LIDs consumed : {} of {}",
        lmpr::routing::lid::lids_required(&topo, k).unwrap_or(0),
        lmpr::routing::lid::UNICAST_LIDS
    );
    // Validate every route end to end (what a subnet manager would do).
    let n = topo.num_pns();
    let mut checked = 0u64;
    for s in 0..n {
        for d in 0..n {
            for slot in 0..k.min(4) {
                ft.route(&topo, PnId(s), PnId(d), slot)
                    .map_err(|e| e.to_string())?;
                checked += 1;
            }
        }
    }
    println!("validated     : {checked} table walks, all shortest and correct");
    Ok(())
}
