//! Limited multi-path routing on extended generalized fat-trees — the
//! facade crate.
//!
//! This crate re-exports the whole workspace behind one dependency and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`). See the individual crates for the deep
//! documentation:
//!
//! * [`topology`] (`xgft`) — XGFT construction, labelling and shortest
//!   path enumeration;
//! * [`routing`] (`lmpr-core`) — the limited multi-path heuristics
//!   (d-mod-k, shift-1, disjoint, random, UMULTI);
//! * [`traffic`] (`lmpr-traffic`) — permutations, uniform and
//!   adversarial workloads;
//! * [`flowsim`] (`lmpr-flowsim`) — link-load analysis, the optimal-load
//!   lower bound, and the confidence-interval permutation study;
//! * [`flitsim`] (`lmpr-flitsim`) — the cycle-driven virtual
//!   cut-through simulator.
//!
//! # Quickstart
//!
//! ```
//! use lmpr::prelude::*;
//!
//! // An 8-port 2-tree (32 processing nodes).
//! let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).unwrap());
//!
//! // Compare single-path d-mod-k with 4-path disjoint routing on one
//! // random permutation.
//! let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), 1));
//! let single = LinkLoads::accumulate(&topo, &DModK, &tm).max_load();
//! let multi = LinkLoads::accumulate(&topo, &Disjoint::new(4), &tm).max_load();
//! assert!(multi <= single);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lmpr_core as routing;
pub use lmpr_flitsim as flitsim;
pub use lmpr_flowsim as flowsim;
pub use lmpr_traffic as traffic;
pub use xgft as topology;

/// One-stop imports for examples and downstream binaries.
pub mod prelude {
    pub use lmpr_core::{
        CachedSelection, DModK, Disjoint, DisjointStride, FaultAware, PathSet, RandomK, RouteError,
        Router, RouterKind, SModK, SelectionEngine, SelectionStats, ShiftOne, Umulti,
    };
    pub use lmpr_flitsim::{
        DeadlockReport, FaultPolicy, FlitSim, PathPolicy, ResilienceConfig, RetxConfig, SimConfig,
        SimError, SimStats, TrafficMode,
    };
    pub use lmpr_flowsim::{DegradedLoads, LinkLoads, PermutationStudy, StudyConfig};
    pub use lmpr_traffic::{random_permutation, TrafficMatrix};
    pub use xgft::{
        DirectedLinkId, FaultChange, FaultEvent, FaultSchedule, FaultSet, NodeId, PathId, PnId,
        Topology, XgftSpec,
    };
}
